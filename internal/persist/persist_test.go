package persist

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"portal/internal/engine"
	"portal/internal/problems"
	"portal/internal/storage"
	"portal/internal/tree"
)

func randStorage(rng *rand.Rand, n, d int) *storage.Storage {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 3
		}
	}
	return storage.MustFromRows(rows)
}

func saveLoad(t *testing.T, tr *tree.Tree) *Loaded {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tree.snap")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Release() })
	return l
}

// TestRoundTripStructure pins arena-level equality: every node of the
// loaded tree must carry exactly the rebuilt tree's geometry, ranges,
// aggregates, and topology, and the payload buffers must match to the
// bit.
func TestRoundTripStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name    string
		d       int
		weights bool
		oct     bool
	}{
		{"kd-3d", 3, false, false},
		{"kd-6d-rowmajor", 6, false, false},
		{"kd-3d-weighted", 3, true, false},
		{"oct-3d", 3, false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := randStorage(rng, 700, tc.d)
			opts := &tree.Options{LeafSize: 16}
			if tc.weights {
				w := make([]float64, data.Len())
				for i := range w {
					w[i] = 1 + rng.Float64()
				}
				opts.Weights = w
			}
			var tr *tree.Tree
			if tc.oct {
				tr = tree.BuildOct(data, opts)
			} else {
				tr = tree.BuildKD(data, opts)
			}
			l := saveLoad(t, tr)
			got := l.Tree

			if got.Len() != tr.Len() || got.Dim() != tr.Dim() ||
				got.NodeCount != tr.NodeCount || got.LeafCount != tr.LeafCount ||
				got.MaxDepth != tr.MaxDepth || got.LeafSize != tr.LeafSize {
				t.Fatalf("tree stats differ: got %d/%d nodes=%d leaves=%d depth=%d leafsize=%d",
					got.Len(), got.Dim(), got.NodeCount, got.LeafCount, got.MaxDepth, got.LeafSize)
			}
			if got.Data.Layout() != tr.Data.Layout() {
				t.Fatalf("layout %v, want %v", got.Data.Layout(), tr.Data.Layout())
			}
			for i := range tr.Nodes {
				a, b := &tr.Nodes[i], &got.Nodes[i]
				if a.ID != b.ID || a.Begin != b.Begin || a.End != b.End || a.Depth != b.Depth ||
					a.Mass != b.Mass || len(a.Children) != len(b.Children) {
					t.Fatalf("node %d header differs", i)
				}
				for j := range a.Children {
					if a.Children[j].ID != b.Children[j].ID {
						t.Fatalf("node %d child %d: id %d, want %d", i, j, b.Children[j].ID, a.Children[j].ID)
					}
				}
				for j := 0; j < tr.Dim(); j++ {
					if a.BBox.Min[j] != b.BBox.Min[j] || a.BBox.Max[j] != b.BBox.Max[j] ||
						a.Center[j] != b.Center[j] || a.Centroid[j] != b.Centroid[j] {
						t.Fatalf("node %d coords differ in dim %d", i, j)
					}
				}
				if ga, gb := got.Parent[i], tr.Parent[i]; ga != gb {
					t.Fatalf("parent[%d] = %d, want %d", i, ga, gb)
				}
			}
			for i, v := range tr.Data.Flat() {
				if got.Data.Flat()[i] != v {
					t.Fatalf("point buffer differs at %d", i)
				}
			}
			for i, v := range tr.Index {
				if got.Index[i] != v {
					t.Fatalf("index differs at %d", i)
				}
			}
			if tc.weights {
				for i, v := range tr.Weights {
					if got.Weights[i] != v {
						t.Fatalf("weights differ at %d", i)
					}
				}
			} else if got.Weights != nil {
				t.Fatal("unweighted tree loaded with weights")
			}
		})
	}
}

// TestDifferentialQueries is the acceptance differential: for every
// operator family, a query against the mmap-loaded tree must produce
// byte-identical results to the same query against the freshly rebuilt
// tree — same compiled problem, same query tree, only the reference
// tree swapped.
func TestDifferentialQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ref := randStorage(rng, 900, 3)
	query := randStorage(rng, 120, 3)
	built := tree.BuildKD(ref, &tree.Options{LeafSize: 16})
	l := saveLoad(t, built)
	loaded := l.Tree

	cfg := engine.Config{LeafSize: 16}
	qt := tree.BuildKD(query, &tree.Options{LeafSize: 16})

	type family struct {
		name string
		spec func() (p *engine.Problem, selfJoin bool, err error)
	}
	kcfg := cfg
	kcfg.Tau = 1e-3
	families := []family{
		{"knn", func() (*engine.Problem, bool, error) {
			p, err := engine.Compile("knn", problems.KNNSpec(query, ref, 5), cfg)
			return p, false, err
		}},
		{"kde", func() (*engine.Problem, bool, error) {
			p, err := engine.Compile("kde", problems.KDESpec(query, ref, 1.2), kcfg)
			return p, false, err
		}},
		{"rangesearch", func() (*engine.Problem, bool, error) {
			p, err := engine.Compile("rs", problems.RangeSearchSpec(query, ref, 0.5, 2.5), cfg)
			return p, false, err
		}},
		{"2pc", func() (*engine.Problem, bool, error) {
			p, err := engine.Compile("2pc", problems.TwoPointSpec(ref, 1.5), cfg)
			return p, true, err
		}},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			p, selfJoin, err := fam.spec()
			if err != nil {
				t.Fatal(err)
			}
			c := cfg
			if fam.name == "kde" {
				c = kcfg
			}
			qTree := qt
			if selfJoin {
				qTree = nil // bound per side below
			}
			run := func(rt *tree.Tree) (vals []float64, args []int, argLists [][]int, valLists [][]float64, scalar float64) {
				q := qTree
				if selfJoin {
					q = rt
				}
				out, err := p.ExecuteOn(q, rt, c)
				if err != nil {
					t.Fatal(err)
				}
				return out.Values, out.Args, out.ArgLists, out.ValueLists, out.Scalar
			}
			wv, wa, wal, wvl, ws := run(built)
			gv, ga, gal, gvl, gs := run(loaded)
			if gs != ws {
				t.Fatalf("scalar %v, want %v", gs, ws)
			}
			if len(gv) != len(wv) || len(ga) != len(wa) || len(gal) != len(wal) || len(gvl) != len(wvl) {
				t.Fatal("output shapes differ between rebuilt and loaded trees")
			}
			for i := range wv {
				if gv[i] != wv[i] {
					t.Fatalf("values[%d] = %v, want %v", i, gv[i], wv[i])
				}
			}
			for i := range wa {
				if ga[i] != wa[i] {
					t.Fatalf("args[%d] = %d, want %d", i, ga[i], wa[i])
				}
			}
			for i := range wal {
				if len(gal[i]) != len(wal[i]) {
					t.Fatalf("arg list %d length differs", i)
				}
				for j := range wal[i] {
					if gal[i][j] != wal[i][j] {
						t.Fatalf("arg list %d[%d] = %d, want %d", i, j, gal[i][j], wal[i][j])
					}
				}
			}
			for i := range wvl {
				for j := range wvl[i] {
					if gvl[i][j] != wvl[i][j] {
						t.Fatalf("value list %d[%d] = %v, want %v", i, j, gvl[i][j], wvl[i][j])
					}
				}
			}
		})
	}
}

// writeValid saves a small tree and returns the snapshot bytes.
func writeValid(t *testing.T) (string, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	data := randStorage(rng, 300, 3)
	tr := tree.BuildKD(data, &tree.Options{LeafSize: 16})
	path := filepath.Join(t.TempDir(), "v.snap")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, b
}

func loadBytes(t *testing.T, b []byte) error {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.snap")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err == nil {
		l.Release()
	}
	return err
}

// TestRejectsInvalidFiles drives every corruption class through Load
// and asserts the typed sentinel — and that nothing panics.
func TestRejectsInvalidFiles(t *testing.T) {
	_, valid := writeValid(t)

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-prologue", valid[:10], ErrTruncated},
		{"short-header", valid[:prologueSize+8], ErrTruncated},
		{"truncated-payload", valid[:len(valid)-64], ErrTruncated},
		{"bad-magic", mutate(func(b []byte) { b[0] = 'X' }), ErrNotSnapshot},
		{"wrong-endian", mutate(func(b []byte) {
			b[12], b[13], b[14], b[15] = 0x01, 0x02, 0x03, 0x04 // big-endian marker bytes
		}), ErrEndian},
		{"version-skew", mutate(func(b []byte) { b[8] = Version + 1 }), ErrVersion},
		{"header-bitflip", mutate(func(b []byte) { b[prologueSize+17] ^= 0x40 }), ErrChecksum},
		{"payload-bitflip", mutate(func(b []byte) { b[len(b)-9] ^= 0x01 }), ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := loadBytes(t, tc.b)
			if err == nil {
				t.Fatal("Load accepted an invalid snapshot")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}

	if _, err := Load(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

// TestReleaseGuards pins double-Release failing loudly without a
// double-unmap.
func TestReleaseGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := tree.BuildKD(randStorage(rng, 200, 3), &tree.Options{LeafSize: 16})
	path := filepath.Join(t.TempDir(), "r.snap")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatalf("first release: %v", err)
	}
	if err := l.Release(); err == nil {
		t.Fatal("second release did not fail")
	}
}

// TestSaveAtomicReplace proves Save over an existing snapshot swaps
// atomically and leaves no temp droppings.
func TestSaveAtomicReplace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dir := t.TempDir()
	path := filepath.Join(dir, "d.snap")
	t1 := tree.BuildKD(randStorage(rng, 200, 3), &tree.Options{LeafSize: 16})
	t2 := tree.BuildKD(randStorage(rng, 400, 3), &tree.Options{LeafSize: 16})
	if err := Save(path, t1); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, t2); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if l.Tree.Len() != 400 {
		t.Fatalf("loaded %d points, want the replacement's 400", l.Tree.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d directory entries after replace, want just the snapshot", len(entries))
	}
}
