//go:build !unix

package persist

import "os"

// mapping abstracts how snapshot bytes are held: a real read-only mmap
// on unix, a heap copy elsewhere.
type mapping interface {
	close() error
}

type heapMapping struct{}

func (*heapMapping) close() error { return nil }

// openMapping reads the whole file on platforms without syscall.Mmap.
// Loads still alias sections zero-copy out of the one heap buffer; only
// the kernel-backed paging (and the datasets-larger-than-RAM story) is
// lost.
func openMapping(path string) (mapping, []byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return &heapMapping{}, b, nil
}
