// Package tree implements Portal's space-partitioning trees (paper
// Section II-A): the kd-tree used for machine-learning problems
// (median split along the widest dimension, leaf capacity q) and the
// octree used for 3-D physics problems such as Barnes-Hut.
//
// Every node carries the metadata the multi-tree traversal consumes
// without touching raw points: bounding box, center, point count, and
// — for approximation problems — total mass and center of mass.
//
// # Flat node arena
//
// Nodes are not individually heap-allocated. A Tree owns one
// contiguous preorder slice of Node headers (Tree.Nodes) plus two
// shared flat buffers: a coordinate arena holding every node's
// BBox.Min/BBox.Max/Center/Centroid vectors back to back, and a
// child-reference arena holding every Children slice. A *Node is
// therefore interchangeable with its arena index (Node.ID), parents
// are available as the arena-indexed Tree.Parent array, and preorder
// walks are linear scans over Tree.Nodes — tree phases are
// bandwidth-bound instead of pointer-chasing-bound, the layout the
// sparse-octree GPU and distributed hierarchical N-body codes use.
//
// # Parallel construction
//
// The build copies the points once into a working buffer and permutes
// it in place alongside the index array at every partition step, so
// all construction scans (quickselect keys, child bounding boxes,
// octant codes, leaf aggregates) are unit-stride over contiguous
// memory and the finished buffer is published as the tree's reordered
// storage without a gather pass.
//
// Construction is parallel end to end when Options.Parallel is set:
// subtree recursion spawns tasks through a workers-1 semaphore (the
// calling goroutine counts against the cap, mirroring
// traverse.Options.Workers semantics), child bounding boxes are
// computed in a single pass fused into the partition step instead of a
// separate full rescan per node, and the bottom-up Mass/Centroid
// aggregation runs chunked across the same worker cap. Spawn behaviour
// is recorded in Tree.Build.
package tree

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"portal/internal/geom"
	"portal/internal/stats"
	"portal/internal/storage"
	"portal/internal/trace"
)

// Node is a tree node covering the contiguous point range [Begin, End)
// of the tree's reordered Storage. Nodes live in the owning Tree's
// preorder arena; their vector fields (BBox, Center, Centroid) are
// views into the tree's shared flat coordinate buffer.
type Node struct {
	// ID is the node's preorder index in its tree — its index in
	// Tree.Nodes. Traversals use it to key per-node state (prune
	// bounds, pending approximation deltas) in flat arrays.
	ID int
	// Begin and End delimit the node's points in Tree.Data.
	Begin, End int
	// BBox is the tight bounding box of the node's points.
	BBox geom.Rect
	// Center is the bounding-box center (the "center data point in a
	// hyper-rectangle" metadata of Table III).
	Center []float64
	// Mass is the total point weight (the count when unweighted) —
	// the "density of that node" used by ComputeApprox.
	Mass float64
	// Centroid is the mass-weighted mean point (Barnes-Hut's center
	// of mass).
	Centroid []float64
	// Children are the child nodes: nil for a leaf, two for a kd-tree
	// node, and up to 2^d for an octree node. The slice is a view into
	// the tree's shared child-reference arena and the pointers address
	// the node arena, so a child reference is equivalent to its index
	// (Children[i].ID).
	Children []*Node
	// Depth is the node's depth from the root (root = 0).
	Depth int
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Count returns the number of points in the node.
func (n *Node) Count() int { return n.End - n.Begin }

// Tree couples the flat node arena with the reordered point storage.
type Tree struct {
	// Root is the tree root: &Nodes[0] (never nil for a non-empty
	// build).
	Root *Node
	// Nodes is the preorder node arena. Nodes[i].ID == i.
	Nodes []Node
	// Parent maps a node's arena index to its parent's arena index
	// (-1 for the root). Preorder guarantees Parent[i] < i, so a single
	// forward scan sees every parent before its children and a single
	// backward scan sees every child before its parent — the property
	// the flat push-down and bottom-up aggregation passes rely on.
	Parent []int32
	// Data is the point storage, reordered so every node's points are
	// contiguous. Its layout follows the Storage layout rule.
	Data *storage.Storage
	// Index maps a reordered position to the point's index in the
	// original Storage (Index[new] = old).
	Index []int
	// Weights are the reordered per-point weights, or nil when the
	// build was unweighted.
	Weights []float64
	// LeafSize is the maximum leaf capacity q the tree was built with.
	LeafSize int

	// Stats filled during construction.
	NodeCount int
	LeafCount int
	MaxDepth  int
	// Build records the construction's task-spawn behaviour.
	Build stats.TreeBuildStats

	// coords is the shared flat coordinate buffer backing every node's
	// BBox.Min, BBox.Max, Center, and Centroid (4·d floats per node).
	coords []float64
	// childRefs is the shared flat buffer backing every node's
	// Children slice (each non-root node appears exactly once).
	childRefs []*Node
}

// Dim returns the dimensionality of the tree's points.
func (t *Tree) Dim() int { return t.Data.Dim() }

// Len returns the number of points in the tree.
func (t *Tree) Len() int { return t.Data.Len() }

// Node returns the node at the given arena index (Node.ID).
func (t *Tree) Node(id int) *Node { return &t.Nodes[id] }

// Walk visits every node in pre-order — a linear scan of the arena.
func (t *Tree) Walk(f func(*Node)) {
	for i := range t.Nodes {
		f(&t.Nodes[i])
	}
}

// Leaves returns all leaf nodes in left-to-right order. In preorder,
// arena order of leaves is exactly left-to-right point order.
func (t *Tree) Leaves() []*Node {
	out := make([]*Node, 0, t.LeafCount)
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			out = append(out, &t.Nodes[i])
		}
	}
	return out
}

// Options configure tree construction.
type Options struct {
	// LeafSize is the maximum number of points per leaf (q > 0). The
	// default is 32, matching the scaled evaluation setup.
	LeafSize int
	// Weights optionally assigns a mass to each point (Barnes-Hut).
	// When nil every point has mass 1.
	Weights []float64
	// Parallel enables parallel construction (subtree recursion,
	// storage gather, and aggregate computation).
	Parallel bool
	// Workers caps build concurrency; 0 means GOMAXPROCS. The calling
	// goroutine counts against the cap: at most Workers goroutines
	// ever execute build work concurrently. Ignored unless Parallel is
	// set, mirroring engine.Config semantics.
	Workers int
	// Trace, when non-nil, records one build span per spawned subtree
	// task plus one root span covering the whole build (so build spans
	// == Build.TasksSpawned + 1). Each span's Items is the subtree's
	// point count.
	Trace trace.Recorder
}

func (o *Options) leafSize() int {
	if o == nil || o.LeafSize <= 0 {
		return 32
	}
	return o.LeafSize
}

func (o *Options) workers() int {
	if o == nil || !o.Parallel {
		return 1
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultLeafSize is the leaf capacity used when Options.LeafSize is 0.
const DefaultLeafSize = 32

// minSpawnCount is the subtree size below which parallel construction
// stops forking tasks: small ranges are cheaper to build inline than
// to schedule.
const minSpawnCount = 4096

// testBuildHook, when non-nil, observes build-worker concurrency:
// called with +1 when a goroutine starts executing build work and -1
// when it stops. Test-only (high-water-mark concurrency proof).
var testBuildHook func(delta int)

func hookEnter() {
	if h := testBuildHook; h != nil {
		h(1)
	}
}

func hookExit() {
	if h := testBuildHook; h != nil {
		h(-1)
	}
}

// bnode is the transient build-time node. The parallel recursion links
// bnodes with pointers (tasks allocate from private chunk pools); the
// finished hierarchy is flattened into the Tree's preorder arena.
type bnode struct {
	begin, end, depth int
	bbox              geom.Rect
	kids              []*bnode
}

// pool is per-task scratch: chunk allocators for bnodes, bbox floats
// and child-pointer slices, plus reusable buffers for the partition
// scans. Each spawned task owns a private pool, so build allocations
// never contend and no per-node scratch slices are made.
type pool struct {
	nodes  []bnode
	floats []float64
	ptrs   []*bnode
	keys   []float64 // quickselect keys for the task's current range
	codes  []uint8   // octant codes (octree only)
	aux    []int     // index permutation scratch (octree only)
	auxF   []float64 // coordinate permutation scratch (octree only)
	center []float64 // octant split center (octree only)
}

const (
	nodeChunk  = 512
	floatChunk = 4096
	ptrChunk   = 1024
)

func (pl *pool) node() *bnode {
	if len(pl.nodes) == cap(pl.nodes) {
		pl.nodes = make([]bnode, 0, nodeChunk)
	}
	pl.nodes = pl.nodes[:len(pl.nodes)+1]
	return &pl.nodes[len(pl.nodes)-1]
}

// rect carves an uninitialized d-dimensional Rect out of the pool's
// float chunk.
func (pl *pool) rect(d int) geom.Rect {
	if len(pl.floats)+2*d > cap(pl.floats) {
		pl.floats = make([]float64, 0, floatChunk)
	}
	off := len(pl.floats)
	pl.floats = pl.floats[:off+2*d]
	buf := pl.floats[off : off+2*d : off+2*d]
	return geom.Rect{Min: buf[:d:d], Max: buf[d:]}
}

func (pl *pool) kidSlice(n int) []*bnode {
	if len(pl.ptrs)+n > cap(pl.ptrs) {
		pl.ptrs = make([]*bnode, 0, ptrChunk)
	}
	off := len(pl.ptrs)
	pl.ptrs = pl.ptrs[:off+n]
	return pl.ptrs[off : off+n : off+n]
}

func (pl *pool) keySlice(n int) []float64 {
	if cap(pl.keys) < n {
		pl.keys = make([]float64, n)
	}
	return pl.keys[:n]
}

func (pl *pool) codeSlice(n int) []uint8 {
	if cap(pl.codes) < n {
		pl.codes = make([]uint8, n)
	}
	return pl.codes[:n]
}

func (pl *pool) auxSlice(n int) []int {
	if cap(pl.aux) < n {
		pl.aux = make([]int, n)
	}
	return pl.aux[:n]
}

func (pl *pool) auxFSlice(n int) []float64 {
	if cap(pl.auxF) < n {
		pl.auxF = make([]float64, n)
	}
	return pl.auxF[:n]
}

func (pl *pool) centerBuf(d int) []float64 {
	if cap(pl.center) < d {
		pl.center = make([]float64, d)
	}
	return pl.center[:d]
}

type builder struct {
	// work is a mutable copy of the source points in the source's
	// physical layout. The partition steps permute it in place alongside
	// idx, so every scan during construction (bounding boxes, quickselect
	// keys, octant codes) runs over contiguous memory instead of
	// gathering through the index array, and finish publishes it as the
	// tree's reordered storage without a final gather pass.
	work    []float64
	idx     []int
	weights []float64
	layout  storage.Layout
	n       int
	d       int
	leaf    int

	workers int
	sem     chan struct{}
	wg      sync.WaitGroup
	rec     trace.Recorder

	spawned int64 // atomic
	inline  int64 // atomic
}

// col returns the working copy of dimension j (column-major layouts).
func (b *builder) col(j int) []float64 {
	return b.work[j*b.n : (j+1)*b.n : (j+1)*b.n]
}

// row returns the working copy of point i (row-major layouts).
func (b *builder) row(i int) []float64 {
	return b.work[i*b.d : (i+1)*b.d : (i+1)*b.d]
}

func newBuilder(s *storage.Storage, opts *Options) *builder {
	if s.Len() == 0 {
		panic("tree: cannot build over empty storage")
	}
	b := &builder{
		work:    make([]float64, s.Len()*s.Dim()),
		idx:     make([]int, s.Len()),
		layout:  s.Layout(),
		n:       s.Len(),
		d:       s.Dim(),
		leaf:    opts.leafSize(),
		workers: opts.workers(),
	}
	if opts != nil {
		b.rec = opts.Trace
	}
	copy(b.work, s.Flat())
	if opts != nil && opts.Weights != nil {
		if len(opts.Weights) != s.Len() {
			panic(fmt.Sprintf("tree: %d weights for %d points", len(opts.Weights), s.Len()))
		}
		b.weights = opts.Weights
	}
	for i := range b.idx {
		b.idx[i] = i
	}
	if b.workers > 1 {
		// The calling goroutine builds inline and counts against the
		// cap, so only workers-1 semaphore slots exist: a spawned task
		// holds its slot for its whole lifetime, capping build
		// concurrency at 1 (caller) + (workers-1) spawned = workers.
		b.sem = make(chan struct{}, b.workers-1)
	}
	return b
}

// spawn tries to fork fn as a build task over a count-point subtree
// rooted at recursion depth; it reports whether a worker slot was
// available. The task holds its slot until fn returns. When tracing
// is on, the task records a build span (opened on the spawned
// goroutine, so the span is execution time, not queueing).
func (b *builder) spawn(count, depth int, fn func(pl *pool)) bool {
	if b.sem == nil {
		return false
	}
	select {
	case b.sem <- struct{}{}:
		atomic.AddInt64(&b.spawned, 1)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			hookEnter()
			var tt *trace.Task
			if b.rec != nil {
				tt = b.rec.TaskBegin(trace.PhaseBuild, depth)
				tt.SetItems(int64(count))
			}
			fn(&pool{})
			if tt != nil {
				b.rec.TaskEnd(tt)
			}
			hookExit()
			<-b.sem
		}()
		return true
	default:
		atomic.AddInt64(&b.inline, 1)
		return false
	}
}

// beginRoot opens the build's root span (nil when tracing is off).
func (b *builder) beginRoot() *trace.Task {
	if b.rec == nil {
		return nil
	}
	tt := b.rec.TaskBegin(trace.PhaseBuild, 0)
	tt.SetItems(int64(b.n))
	return tt
}

// endRoot closes the root span opened by beginRoot.
func (b *builder) endRoot(tt *trace.Task) {
	if tt != nil {
		b.rec.TaskEnd(tt)
	}
}

// BuildKD constructs a kd-tree over s using median splits along the
// widest bounding-box dimension — the strategy the paper's evaluation
// uses for both Portal and the expert baseline (Section V-B).
func BuildKD(s *storage.Storage, opts *Options) *Tree {
	b := newBuilder(s, opts)
	pl := &pool{}
	root := pl.node()
	*root = bnode{begin: 0, end: s.Len(), bbox: pl.rect(b.d)}
	tt := b.beginRoot()
	hookEnter()
	b.scanBBox(0, s.Len(), root.bbox)
	b.buildKD(root, pl)
	hookExit()
	b.wg.Wait()
	t := b.finish(root)
	b.endRoot(tt)
	return t
}

// buildKD recursively splits [begin,end) at the median of the widest
// bounding-box dimension. The node's tight bbox is computed by its
// parent in a scan fused with the partition step, so no per-node
// full-range rescans happen.
func (b *builder) buildKD(n *bnode, pl *pool) {
	count := n.end - n.begin
	splitDim, width := n.bbox.WidestDim()
	if count <= b.leaf || width == 0 {
		return
	}
	mid := n.begin + count/2
	b.selectNth(n.begin, n.end, mid, splitDim, pl)
	// Fused single-pass child bbox computation: one scan of the freshly
	// partitioned range fills both children's tight boxes, replacing
	// the per-node bboxOf rescan (and its scratch slices) the children
	// would otherwise each perform on entry.
	left, right := pl.node(), pl.node()
	*left = bnode{begin: n.begin, end: mid, depth: n.depth + 1, bbox: pl.rect(b.d)}
	*right = bnode{begin: mid, end: n.end, depth: n.depth + 1, bbox: pl.rect(b.d)}
	b.scanBBox(n.begin, mid, left.bbox)
	b.scanBBox(mid, n.end, right.bbox)
	n.kids = pl.kidSlice(2)
	n.kids[0], n.kids[1] = left, right
	if count >= minSpawnCount && b.spawn(left.end-left.begin, left.depth, func(cpl *pool) { b.buildKD(left, cpl) }) {
		b.buildKD(right, pl)
		return
	}
	b.buildKD(left, pl)
	b.buildKD(right, pl)
}

// scanBBox fills r with the tight bounding box of working points
// [lo,hi) — contiguous unit-stride sweeps in either layout, since the
// working copy is permuted in place with the index array.
func (b *builder) scanBBox(lo, hi int, r geom.Rect) {
	if b.layout == storage.ColMajor {
		for j := 0; j < b.d; j++ {
			c := b.col(j)[lo:hi]
			mn, mx := c[0], c[0]
			for _, v := range c[1:] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			r.Min[j], r.Max[j] = mn, mx
		}
		return
	}
	copy(r.Min, b.row(lo))
	copy(r.Max, r.Min)
	for i := lo + 1; i < hi; i++ {
		row := b.row(i)
		for j, v := range row {
			if v < r.Min[j] {
				r.Min[j] = v
			}
			if v > r.Max[j] {
				r.Max[j] = v
			}
		}
	}
}

// median3 returns the median of three values — the pivot *value* for
// the Hoare partition. Choosing a value present in the range (instead
// of swapping sentinels into place) keeps the scans in-bounds with no
// extra swaps.
func median3(a, m, z float64) float64 {
	if m < a {
		a, m = m, a
	}
	if z < m {
		m = z
		if m < a {
			m = a
		}
	}
	return m
}

// selectNth partially sorts working points [lo,hi) so position nth
// holds the point that would be there in full sorted order by the dim
// coordinate (Hoare quickselect, median-of-three pivot values). All
// coordinate columns and the index array are swapped together, keeping
// the working copy permuted in lockstep — the comparisons read the
// split dimension's contiguous column directly.
func (b *builder) selectNth(lo, hi, nth, dim int, pl *pool) {
	if b.layout == storage.ColMajor {
		b.selectNthCols(lo, hi, nth, dim)
		return
	}
	b.selectNthRows(lo, hi, nth, dim, pl)
}

// selectNthCols is the column-major quickselect: comparisons run over
// the split dimension's column, swaps mirror into the (at most
// ColMajorMaxDim-1) remaining columns and the index array. Explicitly
// column-major storage above ColMajorMaxDim (the layout-ablation
// configurations) takes the generic variant, which handles any number
// of mirror columns.
func (b *builder) selectNthCols(lo, hi, nth, dim int) {
	if b.d > storage.ColMajorMaxDim {
		b.selectNthColsGeneric(lo, hi, nth, dim)
		return
	}
	key := b.col(dim)
	id := b.idx
	var o1, o2, o3 []float64
	{
		var os [3][]float64
		k := 0
		for j := 0; j < b.d; j++ {
			if j != dim {
				os[k] = b.col(j)
				k++
			}
		}
		o1, o2, o3 = os[0], os[1], os[2]
	}
	for hi-lo > 1 {
		pivot := median3(key[lo], key[lo+(hi-lo)/2], key[hi-1])
		i, j := lo, hi-1
		for i <= j {
			for key[i] < pivot {
				i++
			}
			for key[j] > pivot {
				j--
			}
			if i <= j {
				key[i], key[j] = key[j], key[i]
				id[i], id[j] = id[j], id[i]
				if o1 != nil {
					o1[i], o1[j] = o1[j], o1[i]
					if o2 != nil {
						o2[i], o2[j] = o2[j], o2[i]
						if o3 != nil {
							o3[i], o3[j] = o3[j], o3[i]
						}
					}
				}
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j + 1
		case nth >= i:
			lo = i
		default:
			return
		}
	}
}

// selectNthColsGeneric mirrors swaps into a slice of the non-split
// columns instead of unrolled locals; only explicit column-major
// storage with d > ColMajorMaxDim reaches it, so the extra indirection
// is off the default layouts' build path.
func (b *builder) selectNthColsGeneric(lo, hi, nth, dim int) {
	key := b.col(dim)
	id := b.idx
	others := make([][]float64, 0, b.d-1)
	for j := 0; j < b.d; j++ {
		if j != dim {
			others = append(others, b.col(j))
		}
	}
	for hi-lo > 1 {
		pivot := median3(key[lo], key[lo+(hi-lo)/2], key[hi-1])
		i, j := lo, hi-1
		for i <= j {
			for key[i] < pivot {
				i++
			}
			for key[j] > pivot {
				j--
			}
			if i <= j {
				key[i], key[j] = key[j], key[i]
				id[i], id[j] = id[j], id[i]
				for _, o := range others {
					o[i], o[j] = o[j], o[i]
				}
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j + 1
		case nth >= i:
			lo = i
		default:
			return
		}
	}
}

// selectNthRows is the row-major quickselect: the dim coordinates are
// extracted once into a contiguous key buffer and rows are swapped
// whole (a row swap is a contiguous d-element exchange).
func (b *builder) selectNthRows(lo, hi, nth, dim int, pl *pool) {
	d := b.d
	keys := pl.keySlice(hi - lo)
	for i := lo; i < hi; i++ {
		keys[i-lo] = b.work[i*d+dim]
	}
	id := b.idx[lo:hi]
	n := nth - lo
	klo, khi := 0, len(keys)
	for khi-klo > 1 {
		pivot := median3(keys[klo], keys[klo+(khi-klo)/2], keys[khi-1])
		i, j := klo, khi-1
		for i <= j {
			for keys[i] < pivot {
				i++
			}
			for keys[j] > pivot {
				j--
			}
			if i <= j {
				keys[i], keys[j] = keys[j], keys[i]
				id[i], id[j] = id[j], id[i]
				ri, rj := b.row(lo+i), b.row(lo+j)
				for k, v := range ri {
					ri[k], rj[k] = rj[k], v
				}
				i++
				j--
			}
		}
		switch {
		case n <= j:
			khi = j + 1
		case n >= i:
			klo = i
		default:
			return
		}
	}
}

// finish flattens the build hierarchy into the preorder arena,
// gathers the reordered storage and weights, and computes node
// aggregates — the gather and the leaf-aggregate phase run chunked
// across the build's worker cap.
func (b *builder) finish(root *bnode) *Tree {
	// Pass 1: size the arena (iterative preorder walk).
	nodeCount, leafCount, maxDepth := 0, 0, 0
	stack := make([]*bnode, 1, 64)
	stack[0] = root
	for len(stack) > 0 {
		bn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodeCount++
		if len(bn.kids) == 0 {
			leafCount++
		}
		if bn.depth > maxDepth {
			maxDepth = bn.depth
		}
		stack = append(stack, bn.kids...)
	}

	d := b.d
	t := &Tree{
		Nodes:     make([]Node, nodeCount),
		Parent:    make([]int32, nodeCount),
		Index:     b.idx,
		LeafSize:  b.leaf,
		NodeCount: nodeCount,
		LeafCount: leafCount,
		MaxDepth:  maxDepth,
		Build: stats.TreeBuildStats{
			Workers:         b.workers,
			TasksSpawned:    atomic.LoadInt64(&b.spawned),
			InlineFallbacks: atomic.LoadInt64(&b.inline),
		},
		coords: make([]float64, 4*d*nodeCount),
	}
	if nodeCount > 1 {
		t.childRefs = make([]*Node, nodeCount-1)
	}

	// Pass 2: preorder fill — IDs, parent links, coordinate views.
	id, kidOff := 0, 0
	var fill func(bn *bnode, parent int32)
	fill = func(bn *bnode, parent int32) {
		i := id
		id++
		t.Parent[i] = parent
		off := 4 * d * i
		co := t.coords[off : off+4*d : off+4*d]
		min, max := co[:d:d], co[d:2*d:2*d]
		center, centroid := co[2*d:3*d:3*d], co[3*d:]
		copy(min, bn.bbox.Min)
		copy(max, bn.bbox.Max)
		for j := 0; j < d; j++ {
			center[j] = 0.5 * (min[j] + max[j])
		}
		nd := &t.Nodes[i]
		nd.ID = i
		nd.Begin, nd.End = bn.begin, bn.end
		nd.Depth = bn.depth
		nd.BBox = geom.Rect{Min: min, Max: max}
		nd.Center = center
		nd.Centroid = centroid
		if len(bn.kids) > 0 {
			ks := t.childRefs[kidOff : kidOff+len(bn.kids) : kidOff+len(bn.kids)]
			kidOff += len(bn.kids)
			nd.Children = ks
			for ci, kid := range bn.kids {
				cid := id
				fill(kid, int32(i))
				ks[ci] = &t.Nodes[cid]
			}
		}
	}
	fill(root, -1)
	t.Root = &t.Nodes[0]

	// Publish the in-place-partitioned working copy as the reordered
	// storage — zero-copy: the build permuted the data alongside the
	// index array, so no gather pass is needed. Weights are permuted
	// chunked across the worker cap.
	t.Data = storage.FromFlat(b.n, b.d, b.layout, b.work)
	if b.weights != nil {
		w := make([]float64, len(b.idx))
		b.parallelRange(len(b.idx), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w[i] = b.weights[b.idx[i]]
			}
		})
		t.Weights = w
	}

	b.computeAggregates(t)
	return t
}

// parallelRange splits [0,n) into chunks across the build's worker
// cap; the calling goroutine runs the first chunk itself, so at most
// `workers` goroutines execute fn concurrently.
func (b *builder) parallelRange(n int, fn func(lo, hi int)) {
	w := b.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for g := 1; g < w; g++ {
		lo := g * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			hookEnter()
			fn(lo, hi)
			hookExit()
		}(lo, hi)
	}
	hookEnter()
	fn(0, chunk)
	hookExit()
	wg.Wait()
}

// computeAggregates fills Mass and Centroid: leaf sums run parallel
// over leaf chunks (the O(n·d) part), then one backward scan of the
// preorder arena folds children into parents — every child index is
// greater than its parent's, so a single reverse pass is a complete
// bottom-up aggregation.
func (b *builder) computeAggregates(t *Tree) {
	d := t.Dim()
	leaves := t.Leaves()
	b.parallelRange(len(leaves), func(lo, hi int) {
		for _, n := range leaves[lo:hi] {
			leafAggregate(t, n, d)
		}
	})
	nodes := t.Nodes
	for i := len(nodes) - 1; i >= 1; i-- {
		nd := &nodes[i]
		par := &nodes[t.Parent[i]]
		par.Mass += nd.Mass
		for j := 0; j < d; j++ {
			par.Centroid[j] += nd.Centroid[j]
		}
		normalizeCentroid(nd, d)
	}
	normalizeCentroid(&nodes[0], d)
}

// leafAggregate computes a leaf's raw mass and unnormalized centroid
// sum from the gathered (contiguous) storage.
func leafAggregate(t *Tree, n *Node, d int) {
	var mass float64
	if t.Data.Layout() == storage.ColMajor {
		if t.Weights == nil {
			mass = float64(n.Count())
			for j := 0; j < d; j++ {
				col := t.Data.Col(j)[n.Begin:n.End]
				var s float64
				for _, v := range col {
					s += v
				}
				n.Centroid[j] = s
			}
		} else {
			w := t.Weights[n.Begin:n.End]
			for _, wi := range w {
				mass += wi
			}
			for j := 0; j < d; j++ {
				col := t.Data.Col(j)[n.Begin:n.End]
				var s float64
				for i, v := range col {
					s += w[i] * v
				}
				n.Centroid[j] = s
			}
		}
	} else {
		for i := n.Begin; i < n.End; i++ {
			w := 1.0
			if t.Weights != nil {
				w = t.Weights[i]
			}
			row := t.Data.Row(i)
			for j, v := range row {
				n.Centroid[j] += w * v
			}
			mass += w
		}
	}
	n.Mass = mass
}

func normalizeCentroid(n *Node, d int) {
	if n.Mass > 0 {
		inv := 1 / n.Mass
		for j := 0; j < d; j++ {
			n.Centroid[j] *= inv
		}
	}
}
