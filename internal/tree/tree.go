// Package tree implements Portal's space-partitioning trees (paper
// Section II-A): the kd-tree used for machine-learning problems
// (median split along the widest dimension, leaf capacity q) and the
// octree used for 3-D physics problems such as Barnes-Hut.
//
// Every node carries the metadata the multi-tree traversal consumes
// without touching raw points: bounding box, center, point count, and
// — for approximation problems — total mass and center of mass.
package tree

import (
	"fmt"
	"runtime"
	"sync"

	"portal/internal/geom"
	"portal/internal/storage"
)

// Node is a tree node covering the contiguous point range [Begin, End)
// of the tree's reordered Storage.
type Node struct {
	// ID is the node's preorder index in its tree, assigned at build
	// time. Traversals use it to key per-node state (prune bounds,
	// pending approximation deltas) in flat arrays.
	ID int
	// Begin and End delimit the node's points in Tree.Data.
	Begin, End int
	// BBox is the tight bounding box of the node's points.
	BBox geom.Rect
	// Center is the bounding-box center (the "center data point in a
	// hyper-rectangle" metadata of Table III).
	Center []float64
	// Mass is the total point weight (the count when unweighted) —
	// the "density of that node" used by ComputeApprox.
	Mass float64
	// Centroid is the mass-weighted mean point (Barnes-Hut's center
	// of mass).
	Centroid []float64
	// Children are the child nodes: nil for a leaf, two for a kd-tree
	// node, and up to 2^d for an octree node.
	Children []*Node
	// Depth is the node's depth from the root (root = 0).
	Depth int
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Count returns the number of points in the node.
func (n *Node) Count() int { return n.End - n.Begin }

// Tree couples the node hierarchy with the reordered point storage.
type Tree struct {
	// Root is the tree root (never nil for a non-empty build).
	Root *Node
	// Data is the point storage, reordered so every node's points are
	// contiguous. Its layout follows the Storage layout rule.
	Data *storage.Storage
	// Index maps a reordered position to the point's index in the
	// original Storage (Index[new] = old).
	Index []int
	// Weights are the reordered per-point weights, or nil when the
	// build was unweighted.
	Weights []float64
	// LeafSize is the maximum leaf capacity q the tree was built with.
	LeafSize int

	// Stats filled during construction.
	NodeCount int
	LeafCount int
	MaxDepth  int
}

// Dim returns the dimensionality of the tree's points.
func (t *Tree) Dim() int { return t.Data.Dim() }

// Len returns the number of points in the tree.
func (t *Tree) Len() int { return t.Data.Len() }

// Options configure tree construction.
type Options struct {
	// LeafSize is the maximum number of points per leaf (q > 0). The
	// default is 32, matching the scaled evaluation setup.
	LeafSize int
	// Weights optionally assigns a mass to each point (Barnes-Hut).
	// When nil every point has mass 1.
	Weights []float64
	// Parallel enables parallel subtree construction.
	Parallel bool
}

func (o *Options) leafSize() int {
	if o == nil || o.LeafSize <= 0 {
		return 32
	}
	return o.LeafSize
}

// DefaultLeafSize is the leaf capacity used when Options.LeafSize is 0.
const DefaultLeafSize = 32

type builder struct {
	src     *storage.Storage
	idx     []int
	weights []float64
	leaf    int
	d       int

	mu        sync.Mutex
	nodeCount int
	leafCount int
	maxDepth  int

	parallel bool
	sem      chan struct{}
	wg       sync.WaitGroup
}

// BuildKD constructs a kd-tree over s using median splits along the
// widest bounding-box dimension — the strategy the paper's evaluation
// uses for both Portal and the expert baseline (Section V-B).
func BuildKD(s *storage.Storage, opts *Options) *Tree {
	if s.Len() == 0 {
		panic("tree: cannot build over empty storage")
	}
	b := &builder{
		src:  s,
		idx:  make([]int, s.Len()),
		leaf: opts.leafSize(),
		d:    s.Dim(),
	}
	if opts != nil && opts.Weights != nil {
		if len(opts.Weights) != s.Len() {
			panic(fmt.Sprintf("tree: %d weights for %d points", len(opts.Weights), s.Len()))
		}
		b.weights = opts.Weights
	}
	for i := range b.idx {
		b.idx[i] = i
	}
	if opts != nil && opts.Parallel {
		b.parallel = true
		b.sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	root := b.buildKD(0, s.Len(), 0)
	b.wg.Wait()
	return b.finish(root)
}

// finish reorders the storage/weights by the final index permutation
// and computes node aggregates bottom-up.
func (b *builder) finish(root *Node) *Tree {
	t := &Tree{
		Root:      root,
		Data:      b.src.Gather(b.idx),
		Index:     b.idx,
		LeafSize:  b.leaf,
		NodeCount: b.nodeCount,
		LeafCount: b.leafCount,
		MaxDepth:  b.maxDepth,
	}
	if b.weights != nil {
		w := make([]float64, len(b.idx))
		for newPos, old := range b.idx {
			w[newPos] = b.weights[old]
		}
		t.Weights = w
	}
	id := 0
	t.Walk(func(n *Node) {
		n.ID = id
		id++
	})
	computeAggregates(root, t)
	return t
}

// bboxOf computes the tight bounding box of idx[lo:hi].
func (b *builder) bboxOf(lo, hi int) geom.Rect {
	r := geom.EmptyRect(b.d)
	p := make([]float64, b.d)
	for i := lo; i < hi; i++ {
		b.src.Point(b.idx[i], p)
		r.Expand(p)
	}
	return r
}

func (b *builder) record(n *Node) {
	b.mu.Lock()
	b.nodeCount++
	if n.IsLeaf() {
		b.leafCount++
	}
	if n.Depth > b.maxDepth {
		b.maxDepth = n.Depth
	}
	b.mu.Unlock()
}

func (b *builder) buildKD(lo, hi, depth int) *Node {
	bbox := b.bboxOf(lo, hi)
	n := &Node{Begin: lo, End: hi, BBox: bbox, Center: bbox.Center(nil), Depth: depth}
	count := hi - lo
	splitDim, width := bbox.WidestDim()
	if count <= b.leaf || width == 0 {
		b.record(n)
		return n
	}
	mid := lo + count/2
	b.selectNth(lo, hi, mid, splitDim)
	n.Children = make([]*Node, 2)
	build := func(slot, clo, chi int) {
		n.Children[slot] = b.buildKD(clo, chi, depth+1)
	}
	if b.parallel && count > 4096 {
		// Task parallelism over subtree construction, bounded by the
		// semaphore so goroutine creation stops once cores saturate.
		select {
		case b.sem <- struct{}{}:
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				build(0, lo, mid)
				<-b.sem
			}()
			build(1, mid, hi)
		default:
			build(0, lo, mid)
			build(1, mid, hi)
		}
	} else {
		build(0, lo, mid)
		build(1, mid, hi)
	}
	b.record(n)
	return n
}

// selectNth partially sorts idx[lo:hi] so position nth holds the
// element that would be there in full sorted order by the splitDim
// coordinate (Hoare quickselect with median-of-three pivots).
func (b *builder) selectNth(lo, hi, nth, dim int) {
	key := func(i int) float64 { return b.src.At(b.idx[i], dim) }
	for hi-lo > 1 {
		// Median-of-three pivot.
		mid := lo + (hi-lo)/2
		if key(mid) < key(lo) {
			b.idx[mid], b.idx[lo] = b.idx[lo], b.idx[mid]
		}
		if key(hi-1) < key(lo) {
			b.idx[hi-1], b.idx[lo] = b.idx[lo], b.idx[hi-1]
		}
		if key(hi-1) < key(mid) {
			b.idx[hi-1], b.idx[mid] = b.idx[mid], b.idx[hi-1]
		}
		pivot := key(mid)
		i, j := lo, hi-1
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				b.idx[i], b.idx[j] = b.idx[j], b.idx[i]
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j + 1
		case nth >= i:
			lo = i
		default:
			return
		}
	}
}

// computeAggregates fills Mass and Centroid bottom-up.
func computeAggregates(n *Node, t *Tree) {
	d := t.Dim()
	n.Centroid = make([]float64, d)
	if n.IsLeaf() {
		p := make([]float64, d)
		var mass float64
		for i := n.Begin; i < n.End; i++ {
			w := 1.0
			if t.Weights != nil {
				w = t.Weights[i]
			}
			t.Data.Point(i, p)
			for j := 0; j < d; j++ {
				n.Centroid[j] += w * p[j]
			}
			mass += w
		}
		n.Mass = mass
	} else {
		for _, c := range n.Children {
			computeAggregates(c, t)
			n.Mass += c.Mass
			for j := 0; j < d; j++ {
				n.Centroid[j] += c.Mass * c.Centroid[j]
			}
		}
	}
	if n.Mass > 0 {
		inv := 1 / n.Mass
		for j := 0; j < d; j++ {
			n.Centroid[j] *= inv
		}
	}
}

// Walk visits every node in pre-order.
func (t *Tree) Walk(f func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// Leaves returns all leaf nodes in left-to-right order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
		}
	})
	return out
}
