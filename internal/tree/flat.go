package tree

import (
	"fmt"

	"portal/internal/geom"
	"portal/internal/storage"
)

// Flat is the layout-free export of a built Tree: every piece of tree
// state as fixed-width contiguous arrays, the shape internal/persist
// serializes verbatim. The large buffers (Coords, Points, Index,
// Weights) are shared with the Tree on export and aliased straight off
// an mmap on import — only the per-node scalar arrays (Begin, End,
// Depth, Mass) are copied out of the Node headers, because Go struct
// arrays holding slice views cannot be mapped from disk.
//
// The preorder arena invariants make this exact: Nodes[i].ID == i,
// Parent[i] < i, and each parent's children occupy consecutive IDs, so
// the Children slices are fully reconstructible from Parent alone and
// never need serializing.
type Flat struct {
	// N and D are the point count and dimensionality.
	N, D int
	// Layout is the physical layout of Points.
	Layout storage.Layout
	// LeafSize is the leaf capacity the tree was built with.
	LeafSize int
	// NodeCount, LeafCount, and MaxDepth mirror the Tree stats.
	NodeCount, LeafCount, MaxDepth int
	// Parent is the arena parent array (length NodeCount, Parent[0] == -1).
	Parent []int32
	// Depth holds each node's depth (length NodeCount).
	Depth []int32
	// Begin and End delimit each node's point range (length NodeCount).
	Begin, End []int64
	// Mass holds each node's total weight (length NodeCount).
	Mass []float64
	// Coords is the shared coordinate buffer: 4·D floats per node
	// (BBox.Min, BBox.Max, Center, Centroid back to back).
	Coords []float64
	// Points is the reordered point buffer (N·D values in Layout).
	Points []float64
	// Index maps reordered positions to original indices (length N).
	Index []int
	// Weights are the reordered per-point weights, or nil.
	Weights []float64
}

// Export flattens the tree into its serializable form. The returned
// Flat shares Coords, Points, Index, and Weights with the tree (no
// copies); only the per-node scalars are gathered out of the arena.
func (t *Tree) Export() *Flat {
	nc := len(t.Nodes)
	f := &Flat{
		N:         t.Len(),
		D:         t.Dim(),
		Layout:    t.Data.Layout(),
		LeafSize:  t.LeafSize,
		NodeCount: nc,
		LeafCount: t.LeafCount,
		MaxDepth:  t.MaxDepth,
		Parent:    t.Parent,
		Depth:     make([]int32, nc),
		Begin:     make([]int64, nc),
		End:       make([]int64, nc),
		Mass:      make([]float64, nc),
		Coords:    t.coords,
		Points:    t.Data.Flat(),
		Index:     t.Index,
		Weights:   t.Weights,
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		f.Depth[i] = int32(n.Depth)
		f.Begin[i] = int64(n.Begin)
		f.End[i] = int64(n.End)
		f.Mass[i] = n.Mass
	}
	return f
}

// FromFlat reconstructs a Tree from its flat export without copying
// the large buffers: Coords, Points, Index, and Weights are aliased
// directly (the persist loader points them into an mmap), and only the
// Node header arena — Go structs that cannot live on disk — is rebuilt
// in one linear pass. Children are recovered from Parent via the
// preorder invariant.
//
// Every structural invariant is validated with errors, never panics:
// the input may come from an untrusted or corrupt file, so no value is
// used as an index before it is range-checked.
func FromFlat(f *Flat) (*Tree, error) {
	nc := f.NodeCount
	switch {
	case f.N < 1 || f.D < 1:
		return nil, fmt.Errorf("tree: flat import: invalid shape %dx%d", f.N, f.D)
	case f.Layout != storage.RowMajor && f.Layout != storage.ColMajor:
		return nil, fmt.Errorf("tree: flat import: invalid layout %d", f.Layout)
	case nc < 1:
		return nil, fmt.Errorf("tree: flat import: %d nodes", nc)
	case len(f.Parent) != nc || len(f.Depth) != nc || len(f.Begin) != nc || len(f.End) != nc || len(f.Mass) != nc:
		return nil, fmt.Errorf("tree: flat import: per-node arrays %d/%d/%d/%d/%d for %d nodes",
			len(f.Parent), len(f.Depth), len(f.Begin), len(f.End), len(f.Mass), nc)
	case len(f.Coords) != 4*f.D*nc:
		return nil, fmt.Errorf("tree: flat import: %d coords, want %d", len(f.Coords), 4*f.D*nc)
	case len(f.Points) != f.N*f.D:
		return nil, fmt.Errorf("tree: flat import: %d point values, want %d", len(f.Points), f.N*f.D)
	case len(f.Index) != f.N:
		return nil, fmt.Errorf("tree: flat import: %d index entries, want %d", len(f.Index), f.N)
	case f.Weights != nil && len(f.Weights) != f.N:
		return nil, fmt.Errorf("tree: flat import: %d weights, want %d", len(f.Weights), f.N)
	}
	if f.Parent[0] != -1 {
		return nil, fmt.Errorf("tree: flat import: root parent %d, want -1", f.Parent[0])
	}
	if f.Begin[0] != 0 || f.End[0] != int64(f.N) {
		return nil, fmt.Errorf("tree: flat import: root covers [%d,%d), want [0,%d)", f.Begin[0], f.End[0], f.N)
	}
	childCount := make([]int32, nc)
	maxDepth := 0
	for i := 0; i < nc; i++ {
		if i > 0 {
			p := f.Parent[i]
			if p < 0 || int(p) >= i {
				return nil, fmt.Errorf("tree: flat import: node %d has parent %d (preorder requires 0 <= parent < id)", i, p)
			}
			if f.Depth[i] != f.Depth[p]+1 {
				return nil, fmt.Errorf("tree: flat import: node %d depth %d under parent depth %d", i, f.Depth[i], f.Depth[p])
			}
			childCount[p]++
		}
		if f.Begin[i] < 0 || f.End[i] < f.Begin[i] || f.End[i] > int64(f.N) {
			return nil, fmt.Errorf("tree: flat import: node %d covers [%d,%d) of %d points", i, f.Begin[i], f.End[i], f.N)
		}
		if d := int(f.Depth[i]); d > maxDepth {
			maxDepth = d
		}
	}

	d := f.D
	leafSize := f.LeafSize
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	t := &Tree{
		Nodes:     make([]Node, nc),
		Parent:    f.Parent,
		Data:      storage.FromFlat(f.N, f.D, f.Layout, f.Points),
		Index:     f.Index,
		Weights:   f.Weights,
		LeafSize:  leafSize,
		NodeCount: nc,
		MaxDepth:  maxDepth,
		coords:    f.Coords,
	}
	// Child slices are carved out of one shared arena exactly as the
	// builder lays them out: each parent's run starts at the prefix sum
	// of the child counts of all lower-ID nodes.
	if nc > 1 {
		t.childRefs = make([]*Node, nc-1)
	}
	offsets := make([]int32, nc)
	leafCount := 0
	var run int32
	for i := 0; i < nc; i++ {
		offsets[i] = run
		run += childCount[i]
		if childCount[i] == 0 {
			leafCount++
		}
	}
	for i := 0; i < nc; i++ {
		co := f.Coords[4*d*i : 4*d*(i+1) : 4*d*(i+1)]
		nd := &t.Nodes[i]
		nd.ID = i
		nd.Begin, nd.End = int(f.Begin[i]), int(f.End[i])
		nd.Depth = int(f.Depth[i])
		nd.BBox = geom.Rect{Min: co[:d:d], Max: co[d : 2*d : 2*d]}
		nd.Center = co[2*d : 3*d : 3*d]
		nd.Centroid = co[3*d:]
		nd.Mass = f.Mass[i]
		if c := childCount[i]; c > 0 {
			nd.Children = t.childRefs[offsets[i] : offsets[i]+c : offsets[i]+c]
		}
	}
	// Second pass: attach each node to its parent's next child slot.
	// Preorder visits a parent's children in ascending ID order, so
	// filling slots in ID order reproduces the build's child order.
	next := make([]int32, nc)
	for i := 1; i < nc; i++ {
		p := f.Parent[i]
		t.childRefs[offsets[p]+next[p]] = &t.Nodes[i]
		next[p]++
	}
	t.Root = &t.Nodes[0]
	t.LeafCount = leafCount
	if f.LeafCount != 0 && f.LeafCount != leafCount {
		return nil, fmt.Errorf("tree: flat import: %d leaves recorded, %d reconstructed", f.LeafCount, leafCount)
	}
	if f.MaxDepth != 0 && f.MaxDepth != maxDepth {
		return nil, fmt.Errorf("tree: flat import: max depth %d recorded, %d reconstructed", f.MaxDepth, maxDepth)
	}
	return t, nil
}
