package tree

import (
	"math/rand"
	"testing"

	"portal/internal/storage"
	"portal/internal/trace"
)

func traceData(n, d int, seed int64) *storage.Storage {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return storage.MustFromRows(rows)
}

// A traced build records Build.TasksSpawned+1 spans: the root build
// plus one per spawned subtree task. Serial builds record exactly one.
func TestBuildTraceSpans(t *testing.T) {
	data := traceData(4096, 3, 31)

	builds := []struct {
		name  string
		build func(*storage.Storage, *Options) *Tree
	}{
		{"kd", BuildKD},
		{"oct", BuildOct},
	}
	for _, bc := range builds {
		for _, workers := range []int{1, 4} {
			rec := trace.New()
			tr := bc.build(data, &Options{LeafSize: 16, Parallel: workers > 1, Workers: workers, Trace: rec})

			spans := rec.Spans()
			if want := int(tr.Build.TasksSpawned) + 1; len(spans) != want {
				t.Fatalf("%s workers=%d: %d spans, want Build.TasksSpawned+1 = %d",
					bc.name, workers, len(spans), want)
			}
			if hw := rec.MaxWorkers(); hw > workers {
				t.Fatalf("%s workers=%d: lane high-water %d exceeds cap", bc.name, workers, hw)
			}
			var roots int
			for _, sp := range spans {
				if sp.Phase != trace.PhaseBuild {
					t.Fatalf("%s workers=%d: span phase %v, want build", bc.name, workers, sp.Phase)
				}
				if sp.Items <= 0 {
					t.Fatalf("%s workers=%d: span with %d items, want subtree point count", bc.name, workers, sp.Items)
				}
				if sp.SpawnDepth == 0 && sp.Items == int64(data.Len()) {
					roots++
				}
			}
			if roots != 1 {
				t.Fatalf("%s workers=%d: %d root spans covering all %d points, want 1",
					bc.name, workers, roots, data.Len())
			}
			if workers == 1 && tr.Build.TasksSpawned != 0 {
				t.Fatalf("%s: serial build spawned %d tasks", bc.name, tr.Build.TasksSpawned)
			}
		}
	}
}

// An untraced build behaves identically to a traced one (same tree
// shape, same task counters within the worker cap).
func TestBuildTraceDoesNotChangeTree(t *testing.T) {
	data := traceData(2048, 3, 32)
	plain := BuildKD(data, &Options{LeafSize: 16, Parallel: true, Workers: 4})
	rec := trace.New()
	traced := BuildKD(data, &Options{LeafSize: 16, Parallel: true, Workers: 4, Trace: rec})
	if plain.NodeCount != traced.NodeCount || plain.MaxDepth != traced.MaxDepth ||
		plain.LeafCount != traced.LeafCount {
		t.Fatalf("traced build shape differs: %d/%d/%d vs %d/%d/%d",
			plain.NodeCount, plain.MaxDepth, plain.LeafCount,
			traced.NodeCount, traced.MaxDepth, traced.LeafCount)
	}
}
