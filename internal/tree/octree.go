package tree

import "portal/internal/storage"

// BuildOct constructs an octree (2^d-way spatial subdivision at box
// centers) over low-dimensional data — the tree the paper uses for the
// Barnes-Hut validation (Section V-C, "octree for Barnes-Hut"). It
// panics for d > 6 where 2^d fan-out stops making sense; kd-trees are
// the right structure there.
func BuildOct(s *storage.Storage, opts *Options) *Tree {
	if s.Len() == 0 {
		panic("tree: cannot build over empty storage")
	}
	d := s.Dim()
	if d > 6 {
		panic("tree: octree fan-out impractical beyond 6 dimensions; use BuildKD")
	}
	b := &builder{
		src:  s,
		idx:  make([]int, s.Len()),
		leaf: opts.leafSize(),
		d:    d,
	}
	if opts != nil && opts.Weights != nil {
		if len(opts.Weights) != s.Len() {
			panic("tree: weight/point count mismatch")
		}
		b.weights = opts.Weights
	}
	for i := range b.idx {
		b.idx[i] = i
	}
	root := b.buildOct(0, s.Len(), 0)
	return b.finish(root)
}

// buildOct splits [lo,hi) into up to 2^d octants around the bounding
// box center, recursing while a child exceeds the leaf capacity.
func (b *builder) buildOct(lo, hi, depth int) *Node {
	bbox := b.bboxOf(lo, hi)
	n := &Node{Begin: lo, End: hi, BBox: bbox, Center: bbox.Center(nil), Depth: depth}
	count := hi - lo
	_, width := bbox.WidestDim()
	if count <= b.leaf || width == 0 {
		b.record(n)
		return n
	}
	center := n.Center
	// Bucket points by octant code: bit j set when coord j > center j.
	nOct := 1 << b.d
	buckets := make([][]int, nOct)
	p := make([]float64, b.d)
	for i := lo; i < hi; i++ {
		b.src.Point(b.idx[i], p)
		code := 0
		for j := 0; j < b.d; j++ {
			if p[j] > center[j] {
				code |= 1 << j
			}
		}
		buckets[code] = append(buckets[code], b.idx[i])
	}
	// Rewrite idx[lo:hi] so octants are contiguous, then recurse into
	// the non-empty ones.
	pos := lo
	starts := make([]int, nOct+1)
	for c, bucket := range buckets {
		starts[c] = pos
		copy(b.idx[pos:pos+len(bucket)], bucket)
		pos += len(bucket)
	}
	starts[nOct] = hi
	nonEmpty := 0
	for _, bucket := range buckets {
		if len(bucket) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		// All points in one octant (coincident or degenerate): stop
		// subdividing to guarantee termination.
		b.record(n)
		return n
	}
	for c := 0; c < nOct; c++ {
		clo, chi := starts[c], starts[c]+len(buckets[c])
		if chi == clo {
			continue
		}
		n.Children = append(n.Children, b.buildOct(clo, chi, depth+1))
	}
	b.record(n)
	return n
}
