package tree

import (
	"portal/internal/storage"
)

// BuildOct constructs an octree (2^d-way spatial subdivision at box
// centers) over low-dimensional data — the tree the paper uses for the
// Barnes-Hut validation (Section V-C, "octree for Barnes-Hut"). It
// panics for d > 6 where 2^d fan-out stops making sense; kd-trees are
// the right structure there. Construction shares the kd-tree's
// parallel arena pipeline: subtree tasks through the workers-1
// semaphore, fused octant-code/bbox scans, parallel gather and
// aggregation.
func BuildOct(s *storage.Storage, opts *Options) *Tree {
	if s.Dim() > 6 {
		panic("tree: octree fan-out impractical beyond 6 dimensions; use BuildKD")
	}
	b := newBuilder(s, opts)
	pl := &pool{}
	root := pl.node()
	*root = bnode{begin: 0, end: s.Len(), bbox: pl.rect(b.d)}
	tt := b.beginRoot()
	hookEnter()
	b.scanBBox(0, s.Len(), root.bbox)
	b.buildOct(root, pl)
	hookExit()
	b.wg.Wait()
	t := b.finish(root)
	b.endRoot(tt)
	return t
}

// buildOct splits [begin,end) into up to 2^d octants around the
// bounding box center, recursing while a child exceeds the leaf
// capacity. One scan computes every point's octant code and the
// occupancy counts; the partition then places points by counting sort
// (stable, so parallel and sequential builds produce the identical
// permutation) and the children's tight boxes are computed from the
// freshly partitioned ranges — no per-octant bucket slices are
// allocated.
func (b *builder) buildOct(n *bnode, pl *pool) {
	count := n.end - n.begin
	_, width := n.bbox.WidestDim()
	if count <= b.leaf || width == 0 {
		return
	}
	d := b.d
	nOct := 1 << d
	center := pl.centerBuf(d)
	n.bbox.Center(center)
	codes := pl.codeSlice(count)
	var cnt [65]int
	// Fused code scan: octant membership for every point, swept over the
	// contiguous working copy in its physical layout.
	if b.layout == storage.ColMajor {
		for i := range codes {
			codes[i] = 0
		}
		for j := 0; j < d; j++ {
			col := b.col(j)[n.begin:n.end]
			cj := center[j]
			bit := uint8(1) << j
			for i, v := range col {
				if v > cj {
					codes[i] |= bit
				}
			}
		}
	} else {
		for i := 0; i < count; i++ {
			row := b.row(n.begin + i)
			code := uint8(0)
			for j, v := range row {
				if v > center[j] {
					code |= 1 << j
				}
			}
			codes[i] = code
		}
	}
	nonEmpty := 0
	for i := 0; i < count; i++ {
		cnt[codes[i]]++
	}
	for c := 0; c < nOct; c++ {
		if cnt[c] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 {
		// All points in one octant (coincident or degenerate): stop
		// subdividing to guarantee termination.
		return
	}
	// Counting-sort the range so octants are contiguous — stable, so
	// parallel and sequential builds produce the identical permutation.
	// The working coordinates move with the index array.
	var starts [65]int
	pos := 0
	for c := 0; c < nOct; c++ {
		starts[c] = pos
		pos += cnt[c]
	}
	aux := pl.auxSlice(count)
	ofs := starts
	for i := 0; i < count; i++ {
		c := codes[i]
		aux[ofs[c]] = b.idx[n.begin+i]
		ofs[c]++
	}
	copy(b.idx[n.begin:n.end], aux)
	if b.layout == storage.ColMajor {
		auxF := pl.auxFSlice(count)
		for j := 0; j < d; j++ {
			col := b.col(j)[n.begin:n.end]
			ofs = starts
			for i, v := range col {
				auxF[ofs[codes[i]]] = v
				ofs[codes[i]]++
			}
			copy(col, auxF)
		}
	} else {
		auxF := pl.auxFSlice(count * d)
		ofs = starts
		for i := 0; i < count; i++ {
			c := codes[i]
			copy(auxF[ofs[c]*d:(ofs[c]+1)*d], b.row(n.begin+i))
			ofs[c]++
		}
		copy(b.work[n.begin*d:n.end*d], auxF)
	}
	// Children over the non-empty octants, tight boxes from one scan
	// of each contiguous child range.
	n.kids = pl.kidSlice(nonEmpty)
	ci := 0
	for c := 0; c < nOct; c++ {
		if cnt[c] == 0 {
			continue
		}
		clo, chi := n.begin+starts[c], n.begin+starts[c]+cnt[c]
		kid := pl.node()
		*kid = bnode{begin: clo, end: chi, depth: n.depth + 1, bbox: pl.rect(d)}
		b.scanBBox(clo, chi, kid.bbox)
		n.kids[ci] = kid
		ci++
	}
	// Recurse: spawn tasks for all but the last child while worker
	// slots are free; saturation falls back to inline recursion.
	last := len(n.kids) - 1
	for i, kid := range n.kids {
		kid := kid
		if i < last && kid.end-kid.begin >= minSpawnCount && b.spawn(kid.end-kid.begin, kid.depth, func(cpl *pool) { b.buildOct(kid, cpl) }) {
			continue
		}
		b.buildOct(kid, pl)
	}
}
