package tree

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"portal/internal/storage"
)

// highWater tracks the maximum observed build concurrency through
// testBuildHook.
type highWater struct {
	cur, max int64
}

func (h *highWater) hook(delta int) {
	if delta > 0 {
		c := atomic.AddInt64(&h.cur, 1)
		for {
			m := atomic.LoadInt64(&h.max)
			if c <= m || atomic.CompareAndSwapInt64(&h.max, m, c) {
				break
			}
		}
		return
	}
	atomic.AddInt64(&h.cur, -1)
}

// TestBuildConcurrencyHighWater proves the oversubscription fix: at
// most Workers goroutines ever execute build work concurrently — the
// calling goroutine counts against the cap, so the semaphore holds
// only workers-1 slots. The seed bug sized the semaphore at the full
// worker count while the caller also built, admitting P+1 concurrent
// builders.
func TestBuildConcurrencyHighWater(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randStorage(rng, 100000, 3)
	builds := map[string]func(*storage.Storage, *Options) *Tree{
		"kd":  BuildKD,
		"oct": BuildOct,
	}
	for name, build := range builds {
		for _, workers := range []int{1, 2, 8} {
			hw := &highWater{}
			testBuildHook = hw.hook
			tr := build(s, &Options{Parallel: true, Workers: workers})
			testBuildHook = nil
			if got := atomic.LoadInt64(&hw.max); got > int64(workers) {
				t.Errorf("%s workers=%d: high-water concurrency %d exceeds cap",
					name, workers, got)
			}
			if cur := atomic.LoadInt64(&hw.cur); cur != 0 {
				t.Errorf("%s workers=%d: %d build goroutines still counted after return",
					name, workers, cur)
			}
			if tr.Build.Workers != workers {
				t.Errorf("%s workers=%d: Build.Workers = %d", name, workers, tr.Build.Workers)
			}
			if workers == 1 && tr.Build.TasksSpawned != 0 {
				t.Errorf("%s: serial-cap build spawned %d tasks", name, tr.Build.TasksSpawned)
			}
			if workers == 8 && tr.Build.TasksSpawned == 0 {
				t.Errorf("%s workers=8: build of %d points spawned no tasks", name, s.Len())
			}
		}
	}
}

// TestParallelBuildEquivalence checks that parallel construction is
// bit-identical to sequential construction for both tree kinds: same
// Index permutation, same per-node ranges, boxes, and aggregates, and
// the same arena shape. The kd quickselect operates on disjoint index
// ranges and the octree partition is a stable counting sort, so task
// interleaving cannot change the result.
func TestParallelBuildEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	builds := map[string]func(*storage.Storage, *Options) *Tree{
		"kd":  BuildKD,
		"oct": BuildOct,
	}
	dims := map[string]int{"kd": 5, "oct": 3}
	weights := make([]float64, 30000)
	for i := range weights {
		weights[i] = rng.Float64() + 0.5
	}
	for name, build := range builds {
		s := randStorage(rng, len(weights), dims[name])
		seq := build(s, &Options{LeafSize: 16, Weights: weights})
		par := build(s, &Options{LeafSize: 16, Weights: weights, Parallel: true, Workers: 8})
		if seq.NodeCount != par.NodeCount || seq.LeafCount != par.LeafCount || seq.MaxDepth != par.MaxDepth {
			t.Fatalf("%s: shape differs: seq(%d,%d,%d) par(%d,%d,%d)", name,
				seq.NodeCount, seq.LeafCount, seq.MaxDepth,
				par.NodeCount, par.LeafCount, par.MaxDepth)
		}
		for i := range seq.Index {
			if seq.Index[i] != par.Index[i] {
				t.Fatalf("%s: Index[%d] differs: %d vs %d", name, i, seq.Index[i], par.Index[i])
			}
			if seq.Weights[i] != par.Weights[i] {
				t.Fatalf("%s: Weights[%d] differs", name, i)
			}
		}
		d := s.Dim()
		for id := range seq.Nodes {
			a, b := &seq.Nodes[id], &par.Nodes[id]
			if a.Begin != b.Begin || a.End != b.End || a.Depth != b.Depth ||
				len(a.Children) != len(b.Children) {
				t.Fatalf("%s node %d: structure differs", name, id)
			}
			if seq.Parent[id] != par.Parent[id] {
				t.Fatalf("%s node %d: parent differs", name, id)
			}
			if a.Mass != b.Mass {
				t.Fatalf("%s node %d: mass %v vs %v", name, id, a.Mass, b.Mass)
			}
			for j := 0; j < d; j++ {
				if a.BBox.Min[j] != b.BBox.Min[j] || a.BBox.Max[j] != b.BBox.Max[j] ||
					a.Center[j] != b.Center[j] || a.Centroid[j] != b.Centroid[j] {
					t.Fatalf("%s node %d: coordinates differ in dim %d", name, id, j)
				}
			}
		}
		checkInvariants(t, par, s)
	}
}

// TestKDDegenerateCoordinates is the regression for NaN-free but
// degenerate inputs: heavy duplication and constant dimensions must
// terminate (width-0 splits stop) and still respect the leaf capacity
// wherever the data is separable.
func TestKDDegenerateCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := map[string][][]float64{}

	allSame := make([][]float64, 5000)
	for i := range allSame {
		allSame[i] = []float64{3.25, -1.5, 7}
	}
	cases["all-identical"] = allSame

	fewValues := make([][]float64, 5000)
	for i := range fewValues {
		fewValues[i] = []float64{float64(i % 3), float64(i % 2), 0}
	}
	cases["few-distinct-values"] = fewValues

	constDim := make([][]float64, 5000)
	for i := range constDim {
		constDim[i] = []float64{rng.Float64(), 42, rng.Float64()}
	}
	cases["constant-dimension"] = constDim

	halfDup := make([][]float64, 5000)
	for i := range halfDup {
		halfDup[i] = []float64{float64(i / 2500), rng.Float64(), 0}
	}
	cases["two-clusters"] = halfDup

	for name, rows := range cases {
		s := storage.MustFromRows(rows)
		for _, parallel := range []bool{false, true} {
			tr := BuildKD(s, &Options{LeafSize: 8, Parallel: parallel, Workers: 4})
			checkInvariants(t, tr, s)
			for _, leaf := range tr.Leaves() {
				if leaf.Count() > tr.LeafSize {
					if _, w := leaf.BBox.WidestDim(); w != 0 {
						t.Fatalf("%s (parallel=%v): splittable leaf holds %d > %d points",
							name, parallel, leaf.Count(), tr.LeafSize)
					}
				}
			}
		}
	}
}

// TestParentArrayInvariants checks the preorder arena contract:
// Nodes[i].ID == i, the root is Nodes[0] with Parent -1, every other
// parent index is smaller than its child's (the property the flat
// push-down and bottom-up aggregation passes rely on), and Parent is
// exactly the inverse of the Children lists.
func TestParentArrayInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randStorage(rng, 20000, 3)
	for name, tr := range map[string]*Tree{
		"kd":  BuildKD(s, &Options{LeafSize: 16, Parallel: true}),
		"oct": BuildOct(s, &Options{LeafSize: 16, Parallel: true}),
	} {
		if tr.Root != &tr.Nodes[0] || tr.Parent[0] != -1 {
			t.Fatalf("%s: root is not arena slot 0", name)
		}
		if len(tr.Nodes) != tr.NodeCount || len(tr.Parent) != tr.NodeCount {
			t.Fatalf("%s: arena sized %d/%d for NodeCount %d",
				name, len(tr.Nodes), len(tr.Parent), tr.NodeCount)
		}
		for i := range tr.Nodes {
			nd := &tr.Nodes[i]
			if nd.ID != i || tr.Node(i) != nd {
				t.Fatalf("%s: node %d has ID %d", name, i, nd.ID)
			}
			if i > 0 && (tr.Parent[i] < 0 || int(tr.Parent[i]) >= i) {
				t.Fatalf("%s: Parent[%d] = %d breaks preorder", name, i, tr.Parent[i])
			}
			for j := 0; j < tr.Dim(); j++ {
				want := 0.5 * (nd.BBox.Min[j] + nd.BBox.Max[j])
				if nd.Center[j] != want {
					t.Fatalf("%s node %d: center[%d] = %v, want bbox midpoint %v",
						name, i, j, nd.Center[j], want)
				}
			}
			for _, c := range nd.Children {
				if int(tr.Parent[c.ID]) != i {
					t.Fatalf("%s: Parent[%d] = %d, want %d", name, c.ID, tr.Parent[c.ID], i)
				}
			}
		}
	}
}
