package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"portal/internal/geom"
	"portal/internal/storage"
)

func randStorage(rng *rand.Rand, n, d int) *storage.Storage {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 10
		}
	}
	return storage.MustFromRows(rows)
}

// checkInvariants validates the structural invariants every Portal
// tree must satisfy.
func checkInvariants(t *testing.T, tr *Tree, orig *storage.Storage) {
	t.Helper()
	n := orig.Len()
	d := orig.Dim()

	// Index is a permutation of [0,n).
	seen := make([]bool, n)
	for _, old := range tr.Index {
		if old < 0 || old >= n || seen[old] {
			t.Fatal("Index is not a permutation")
		}
		seen[old] = true
	}
	// Reordered data matches the permutation.
	bufA := make([]float64, d)
	bufB := make([]float64, d)
	for i := 0; i < n; i++ {
		tr.Data.Point(i, bufA)
		orig.Point(tr.Index[i], bufB)
		for j := 0; j < d; j++ {
			if bufA[j] != bufB[j] {
				t.Fatalf("reordered point %d mismatches original %d", i, tr.Index[i])
			}
		}
	}
	leafPoints := 0
	tr.Walk(func(nd *Node) {
		if nd.Count() <= 0 {
			t.Fatal("empty node")
		}
		// Children partition the parent range.
		if !nd.IsLeaf() {
			begin := nd.Begin
			for _, c := range nd.Children {
				if c.Begin != begin {
					t.Fatalf("children do not partition parent: gap at %d", begin)
				}
				begin = c.End
				if !nd.BBox.ContainsRect(c.BBox) {
					t.Fatal("child bbox escapes parent bbox")
				}
			}
			if begin != nd.End {
				t.Fatal("children do not cover parent range")
			}
		} else {
			leafPoints += nd.Count()
		}
		// BBox contains every point of the node.
		for i := nd.Begin; i < nd.End; i++ {
			tr.Data.Point(i, bufA)
			if !nd.BBox.Contains(bufA) {
				t.Fatalf("point %d outside node bbox", i)
			}
		}
		// Mass and centroid are consistent.
		var mass float64
		cent := make([]float64, d)
		for i := nd.Begin; i < nd.End; i++ {
			w := 1.0
			if tr.Weights != nil {
				w = tr.Weights[i]
			}
			tr.Data.Point(i, bufA)
			for j := 0; j < d; j++ {
				cent[j] += w * bufA[j]
			}
			mass += w
		}
		if math.Abs(mass-nd.Mass) > 1e-9*math.Max(1, mass) {
			t.Fatalf("node mass %v, recomputed %v", nd.Mass, mass)
		}
		for j := 0; j < d; j++ {
			want := cent[j] / mass
			if math.Abs(nd.Centroid[j]-want) > 1e-7*math.Max(1, math.Abs(want)) {
				t.Fatalf("centroid[%d] = %v, want %v", j, nd.Centroid[j], want)
			}
		}
	})
	if leafPoints != n {
		t.Fatalf("leaves cover %d points, want %d", leafPoints, n)
	}
}

func TestKDInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		d := 1 + rng.Intn(8)
		s := randStorage(rng, n, d)
		leaf := 1 + rng.Intn(40)
		tr := BuildKD(s, &Options{LeafSize: leaf})
		// Leaf capacity respected (unless degenerate zero-width splits).
		ok := true
		tr.Walk(func(nd *Node) {
			if nd.IsLeaf() && nd.Count() > leaf {
				if nd.BBox.Diameter() > 0 {
					ok = false
				}
			}
		})
		checkInvariants(t, tr, s)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKDMedianBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randStorage(rng, 1024, 3)
	tr := BuildKD(s, &Options{LeafSize: 8})
	// With median splits on 1024 points and leaf size 8 the depth is
	// near log2(1024/8) = 7; allow slack for ties.
	if tr.MaxDepth > 10 {
		t.Fatalf("median-split tree too deep: %d", tr.MaxDepth)
	}
	if tr.LeafCount == 0 || tr.NodeCount < tr.LeafCount {
		t.Fatalf("bad counts: nodes=%d leaves=%d", tr.NodeCount, tr.LeafCount)
	}
}

func TestKDDuplicatePoints(t *testing.T) {
	// All-identical points must terminate (zero-width bbox).
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{1, 2, 3}
	}
	s := storage.MustFromRows(rows)
	tr := BuildKD(s, &Options{LeafSize: 4})
	if !tr.Root.IsLeaf() {
		t.Fatal("degenerate data should yield a single leaf")
	}
	if tr.Root.Count() != 100 {
		t.Fatal("all points should be in the root leaf")
	}
}

func TestKDSinglePoint(t *testing.T) {
	s := storage.MustFromRows([][]float64{{5, 5}})
	tr := BuildKD(s, nil)
	if tr.Len() != 1 || !tr.Root.IsLeaf() {
		t.Fatal("single-point tree wrong")
	}
	if tr.LeafSize != DefaultLeafSize {
		t.Fatalf("default leaf size = %d", tr.LeafSize)
	}
}

func TestKDEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildKD on empty storage should panic")
		}
	}()
	s := storage.New(0, 2)
	BuildKD(s, nil)
}

func TestKDWeighted(t *testing.T) {
	s := storage.MustFromRows([][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}})
	w := []float64{1, 1, 1, 5}
	tr := BuildKD(s, &Options{LeafSize: 1, Weights: w})
	if math.Abs(tr.Root.Mass-8) > 1e-12 {
		t.Fatalf("root mass = %v, want 8", tr.Root.Mass)
	}
	// Center of mass pulled toward the heavy point (2,2).
	if tr.Root.Centroid[0] <= 1 || tr.Root.Centroid[1] <= 1 {
		t.Fatalf("centroid %v should be pulled toward (2,2)", tr.Root.Centroid)
	}
	checkInvariants(t, tr, s)
}

func TestKDWeightMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("weight mismatch should panic")
		}
	}()
	s := storage.MustFromRows([][]float64{{1}, {2}})
	BuildKD(s, &Options{Weights: []float64{1}})
}

func TestKDParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randStorage(rng, 20000, 4)
	seq := BuildKD(s, &Options{LeafSize: 16})
	par := BuildKD(s, &Options{LeafSize: 16, Parallel: true})
	if seq.NodeCount != par.NodeCount || seq.LeafCount != par.LeafCount || seq.MaxDepth != par.MaxDepth {
		t.Fatalf("parallel build differs: seq(%d,%d,%d) par(%d,%d,%d)",
			seq.NodeCount, seq.LeafCount, seq.MaxDepth,
			par.NodeCount, par.LeafCount, par.MaxDepth)
	}
	checkInvariants(t, par, s)
	// Same permutation (the algorithm is deterministic regardless of
	// task interleaving because subtrees own disjoint index ranges).
	for i := range seq.Index {
		if seq.Index[i] != par.Index[i] {
			t.Fatal("parallel build produced a different permutation")
		}
	}
}

func TestWalkAndLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randStorage(rng, 200, 2)
	tr := BuildKD(s, &Options{LeafSize: 16})
	var nodes int
	tr.Walk(func(*Node) { nodes++ })
	if nodes != tr.NodeCount {
		t.Fatalf("Walk visited %d, NodeCount %d", nodes, tr.NodeCount)
	}
	leaves := tr.Leaves()
	if len(leaves) != tr.LeafCount {
		t.Fatalf("Leaves() = %d, LeafCount %d", len(leaves), tr.LeafCount)
	}
	// Left-to-right coverage.
	pos := 0
	for _, l := range leaves {
		if l.Begin != pos {
			t.Fatal("leaves not in left-to-right order")
		}
		pos = l.End
	}
	if pos != tr.Len() {
		t.Fatal("leaves do not cover all points")
	}
}

func TestNodeIDsDensePreorder(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, build := range []func() *Tree{
		func() *Tree { return BuildKD(randStorage(rng, 300, 4), &Options{LeafSize: 8}) },
		func() *Tree { return BuildOct(randStorage(rng, 300, 3), &Options{LeafSize: 8}) },
	} {
		tr := build()
		want := 0
		tr.Walk(func(n *Node) {
			if n.ID != want {
				t.Fatalf("node ID %d, want preorder %d", n.ID, want)
			}
			want++
		})
		if want != tr.NodeCount {
			t.Fatalf("visited %d nodes, NodeCount %d", want, tr.NodeCount)
		}
	}
}

func TestOctInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		d := 1 + rng.Intn(3)
		s := randStorage(rng, n, d)
		tr := BuildOct(s, &Options{LeafSize: 8})
		checkInvariants(t, tr, s)
		// Fan-out bounded by 2^d.
		ok := true
		tr.Walk(func(nd *Node) {
			if len(nd.Children) > 1<<d {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOctDuplicateTermination(t *testing.T) {
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{3, 3, 3}
	}
	tr := BuildOct(storage.MustFromRows(rows), &Options{LeafSize: 4})
	if !tr.Root.IsLeaf() {
		t.Fatal("coincident points should terminate as a leaf")
	}
}

func TestOctHighDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("octree in 7+ dims should panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	BuildOct(randStorage(rng, 10, 7), nil)
}

func TestOctWeightedMass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randStorage(rng, 500, 3)
	w := make([]float64, 500)
	var total float64
	for i := range w {
		w[i] = rng.Float64() + 0.5
		total += w[i]
	}
	tr := BuildOct(s, &Options{LeafSize: 16, Weights: w})
	if math.Abs(tr.Root.Mass-total) > 1e-9*total {
		t.Fatalf("root mass %v, want %v", tr.Root.Mass, total)
	}
	checkInvariants(t, tr, s)
}

// Quickselect correctness: median split puts ~half of the points on
// each side, even against adversarial (sorted / reversed / constant)
// inputs.
func TestSelectNthAdversarial(t *testing.T) {
	for name, gen := range map[string]func(i int) float64{
		"sorted":   func(i int) float64 { return float64(i) },
		"reversed": func(i int) float64 { return float64(-i) },
		"constant": func(i int) float64 { return 7 },
		"sawtooth": func(i int) float64 { return float64(i % 10) },
	} {
		n := 501
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{gen(i), float64(i)}
		}
		s := storage.MustFromRows(rows)
		b := newBuilder(s, &Options{LeafSize: 1})
		mid := n / 2
		b.selectNth(0, n, mid, 0, &pool{})
		pivot := s.At(b.idx[mid], 0)
		for i := 0; i < mid; i++ {
			if s.At(b.idx[i], 0) > pivot {
				t.Fatalf("%s: element %d above pivot on left side", name, i)
			}
		}
		for i := mid + 1; i < n; i++ {
			if s.At(b.idx[i], 0) < pivot {
				t.Fatalf("%s: element %d below pivot on right side", name, i)
			}
		}
	}
}

func TestNodeBBoxTightness(t *testing.T) {
	// Each node bbox should be the *tight* box of its points: shrink it
	// by epsilon and some point must fall outside.
	rng := rand.New(rand.NewSource(21))
	s := randStorage(rng, 256, 3)
	tr := BuildKD(s, &Options{LeafSize: 16})
	buf := make([]float64, 3)
	tr.Walk(func(nd *Node) {
		for j := 0; j < 3; j++ {
			foundMin, foundMax := false, false
			for i := nd.Begin; i < nd.End; i++ {
				tr.Data.Point(i, buf)
				if buf[j] == nd.BBox.Min[j] {
					foundMin = true
				}
				if buf[j] == nd.BBox.Max[j] {
					foundMax = true
				}
			}
			if !foundMin || !foundMax {
				t.Fatal("bbox not tight")
			}
		}
	})
}

func TestGeomIntegration(t *testing.T) {
	// Sibling kd children should have non-overlapping interiors along
	// the split dimension... approximately: median splits with ties can
	// touch. We assert MinDist2 between far-apart leaves is positive.
	rows := [][]float64{}
	for i := 0; i < 64; i++ {
		rows = append(rows, []float64{float64(i), 0})
	}
	tr := BuildKD(storage.MustFromRows(rows), &Options{LeafSize: 4})
	leaves := tr.Leaves()
	first, last := leaves[0], leaves[len(leaves)-1]
	if first.BBox.MinDist2(last.BBox) <= 0 {
		t.Fatal("distant leaves should have positive separation")
	}
	_ = geom.SqDist
}

func BenchmarkBuildKD10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randStorage(rng, 10000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildKD(s, &Options{LeafSize: 32})
	}
}

func BenchmarkBuildKD10kParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randStorage(rng, 10000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildKD(s, &Options{LeafSize: 32, Parallel: true})
	}
}

func BenchmarkBuildOct10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randStorage(rng, 10000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildOct(s, &Options{LeafSize: 32})
	}
}
