// Package serve is the long-lived query path over the Portal engine:
// a registry of immutable, refcounted dataset snapshots, a batching
// executor that admits concurrent small queries into one traversal
// tick, and an HTTP JSON API (cmd/portald) with a thin Go client
// (internal/serve/client).
//
// The registry follows the MVCC snapshot-handle pattern: each named
// dataset resolves to an immutable Snapshot (points + built tree)
// holding a reference count. Readers acquire a handle, run any number
// of traversals against it — trees are immutable after build, and
// engine.ExecuteOn's concurrency contract makes shared use safe — and
// release it. Replacing a dataset builds the new snapshot's tree off
// to the side, atomically swaps the head, and drops the registry's
// reference on the old snapshot; the old version is reclaimed (its
// refcount drains to zero) only after every in-flight query over it
// finishes, so readers never block on writers and never observe a torn
// tree.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"portal/internal/shard"
	"portal/internal/storage"
	"portal/internal/tree"
)

// ErrUnknownDataset is the sentinel for queries naming a dataset the
// registry has no head for. Callers dispatch on it with errors.Is —
// never by matching error text.
var ErrUnknownDataset = errors.New("unknown dataset")

// Snapshot is one immutable version of a named dataset: the point
// storage and its built tree. The registry's head reference keeps it
// alive between queries; each in-flight query holds one additional
// reference.
type Snapshot struct {
	// Name is the dataset name this snapshot was published under.
	Name string
	// Version is the registry-wide monotone version stamped at Put.
	Version int64
	// Data is the immutable point storage.
	Data *storage.Storage
	// Tree is the snapshot's built tree, shared read-only by every
	// query (self-joins bind it on both sides).
	Tree *tree.Tree
	// Partition is the pre-built sharded partition when the server runs
	// with Shards > 1 (nil otherwise). Like Tree it is immutable after
	// publish and shared read-only by every query; sharded executions
	// bind per-shard runs against it under the same concurrency
	// contract.
	Partition *shard.Partition
	// BuildNS is the tree-build wall time recorded at publish.
	BuildNS int64

	// refs starts at 1 — the registry's head reference — and is
	// CAS-incremented by Acquire only while still positive, so a
	// handle can never resurrect a snapshot already being reclaimed.
	refs     atomic.Int64
	reclaim  func(*Snapshot)
	released atomic.Bool
}

// Refs reports the current reference count (the registry head counts
// as one while the snapshot is live).
func (s *Snapshot) Refs() int64 { return s.refs.Load() }

// acquire takes a reference iff the snapshot is still live.
func (s *Snapshot) acquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops one reference. When the count drains to zero the
// snapshot is reclaimed: the registry's reclaim hook runs exactly
// once, and no further Acquire can succeed. Releasing more times than
// acquired panics — a negative refcount means a snapshot backed by an
// mmap could be unmapped while a query still reads it, so the bug must
// fail loudly at the offending Release, not as a later fault.
func (s *Snapshot) Release() {
	n := s.refs.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("serve: snapshot %q v%d released more times than acquired", s.Name, s.Version))
	}
	if n == 0 {
		if s.reclaim != nil && s.released.CompareAndSwap(false, true) {
			s.reclaim(s)
		}
	}
}

// RegistryStats is the registry's observability snapshot.
type RegistryStats struct {
	// Datasets is the number of live named heads.
	Datasets int `json:"datasets"`
	// SnapshotsCreated counts every Put since startup.
	SnapshotsCreated int64 `json:"snapshots_created"`
	// SnapshotsReclaimed counts snapshots whose refcount drained to
	// zero. Created − Reclaimed − Datasets is the number of retired
	// versions still pinned by in-flight queries.
	SnapshotsReclaimed int64 `json:"snapshots_reclaimed"`
}

// Registry maps dataset names to their current head snapshot.
type Registry struct {
	mu        sync.Mutex
	heads     map[string]*Snapshot
	version   atomic.Int64
	created   atomic.Int64
	reclaimed atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{heads: make(map[string]*Snapshot)}
}

// Put publishes a new snapshot as the head for name, returning it.
// The caller builds data's tree off to the side before calling, so
// the swap under the lock is a pointer exchange; the previous head's
// registry reference is released after the swap, deferring its
// reclaim to the last in-flight query.
func (r *Registry) Put(name string, data *storage.Storage, t *tree.Tree, buildNS int64) *Snapshot {
	return r.PutBacked(name, data, t, buildNS, nil)
}

// PutBacked is Put for snapshots whose tree aliases an external
// resource — a persist mmap. onReclaim runs exactly once, after the
// refcount drains to zero, so the mapping is released only when no
// query can still be reading through it.
func (r *Registry) PutBacked(name string, data *storage.Storage, t *tree.Tree, buildNS int64, onReclaim func()) *Snapshot {
	return r.PutPartitioned(name, data, t, nil, buildNS, onReclaim)
}

// PutPartitioned is PutBacked for shard-aware heads: the snapshot
// additionally carries a pre-built sharded partition, so serving a
// sharded query is partition reuse, never a per-query split or
// per-shard tree build.
func (r *Registry) PutPartitioned(name string, data *storage.Storage, t *tree.Tree, part *shard.Partition, buildNS int64, onReclaim func()) *Snapshot {
	s := &Snapshot{
		Name:      name,
		Version:   r.version.Add(1),
		Data:      data,
		Tree:      t,
		Partition: part,
		BuildNS:   buildNS,
		reclaim: func(*Snapshot) {
			r.reclaimed.Add(1)
			if onReclaim != nil {
				onReclaim()
			}
		},
	}
	s.refs.Store(1)
	r.created.Add(1)
	r.mu.Lock()
	old := r.heads[name]
	r.heads[name] = s
	r.mu.Unlock()
	if old != nil {
		old.Release()
	}
	return s
}

// Acquire resolves name to its current head and takes a reference on
// it. The caller must Release the snapshot when done.
func (r *Registry) Acquire(name string) (*Snapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.heads[name]
	if s == nil {
		return nil, false
	}
	// Under the lock the head still holds its registry reference, so
	// acquire cannot race with the final Release.
	if !s.acquire() {
		return nil, false
	}
	return s, true
}

// Drop removes name's head, releasing the registry reference; the
// snapshot is reclaimed once in-flight queries drain.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	s := r.heads[name]
	delete(r.heads, name)
	r.mu.Unlock()
	if s == nil {
		return false
	}
	s.Release()
	return true
}

// List returns the current heads (order unspecified).
func (r *Registry) List() []*Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Snapshot, 0, len(r.heads))
	for _, s := range r.heads {
		out = append(out, s)
	}
	return out
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	n := len(r.heads)
	r.mu.Unlock()
	return RegistryStats{
		Datasets:           n,
		SnapshotsCreated:   r.created.Load(),
		SnapshotsReclaimed: r.reclaimed.Load(),
	}
}
