package serve

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"portal/internal/engine"
	"portal/internal/problems"
	"portal/internal/storage"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := NewServer(cfg)
	t.Cleanup(s.Close)
	return s
}

func mustPut(t *testing.T, s *Server, name string, data *storage.Storage) *Snapshot {
	t.Helper()
	snap, err := s.PutDataset(name, data)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestServerSelfJoinQueryAndCacheHit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newTestServer(t, Config{LeafSize: 16, Workers: 2, Tick: time.Millisecond})
	rows := randRows(rng, 400, 3)
	mustPut(t, s, "pts", storage.MustFromRows(rows))

	req := &QueryRequest{Dataset: "pts", Problem: "knn", K: 1, Stats: true}
	first, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	second, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("repeat query did not hit the compiled-problem cache")
	}
	if second.Report == nil || second.Report.CompileCache == nil {
		t.Fatal("stats=true response missing compile-cache counters on the report")
	}
	if second.Report.CompileCache.Hits < 1 {
		t.Fatalf("compile cache hits = %d, want >= 1", second.Report.CompileCache.Hits)
	}

	// Ground truth: brute force over the same self-join.
	data := storage.MustFromRows(rows)
	want, err := engine.BruteForce(problems.KNNSpec(data, data, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Args) != len(want.Args) {
		t.Fatalf("args length %d, want %d", len(first.Args), len(want.Args))
	}
	for i, a := range first.Args {
		gv := first.Values[i]
		wv := want.Values[i]
		if a != want.Args[i] && math.Abs(gv-wv) > 1e-9*math.Max(1, math.Abs(wv)) {
			t.Fatalf("query %d: arg %d (val %v) vs brute arg %d (val %v)", i, a, gv, want.Args[i], wv)
		}
	}
}

func TestServerExternalPointsQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := newTestServer(t, Config{LeafSize: 16, Workers: 2, Tick: time.Millisecond})
	refRows := randRows(rng, 300, 3)
	mustPut(t, s, "ref", storage.MustFromRows(refRows))
	qRows := randRows(rng, 40, 3)

	resp, err := s.Query(&QueryRequest{
		Dataset: "ref", Problem: "kde", Sigma: 1.2, Tau: 1e-3, Points: qRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	qd := storage.MustFromRows(qRows)
	rd := storage.MustFromRows(refRows)
	want, err := engine.BruteForce(problems.KDESpec(qd, rd, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != len(want.Values) {
		t.Fatalf("values length %d, want %d", len(resp.Values), len(want.Values))
	}
	for i, v := range resp.Values {
		if math.Abs(v-want.Values[i]) > 1e-2*math.Max(1, math.Abs(want.Values[i])) {
			t.Fatalf("kde[%d] = %v, want ~%v", i, v, want.Values[i])
		}
	}

	// Dimension mismatch is rejected cleanly.
	if _, err := s.Query(&QueryRequest{Dataset: "ref", Problem: "kde", Points: [][]float64{{1, 2}}}); err == nil {
		t.Fatal("2-d query points against a 3-d dataset did not error")
	}
}

// Concurrent queries inside one tick must ride one batch: with a wide
// tick, at least some responses report BatchSize > 1 and the batch
// counter stays below the query counter.
func TestServerBatchesConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := newTestServer(t, Config{LeafSize: 16, Workers: 4, Tick: 50 * time.Millisecond, MaxBatch: 32})
	mustPut(t, s, "pts", storage.MustFromRows(randRows(rng, 500, 3)))

	const n = 12
	var wg sync.WaitGroup
	batched := make([]int, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Query(&QueryRequest{Dataset: "pts", Problem: "knn", K: 3})
			if err != nil {
				errs <- err
				return
			}
			batched[i] = resp.BatchSize
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	max := 0
	for _, b := range batched {
		if b > max {
			max = b
		}
	}
	if max < 2 {
		t.Fatalf("no query rode a multi-query tick (max batch size %d)", max)
	}
	st := s.Stats(false)
	if st.Batches >= st.Queries {
		t.Fatalf("batches (%d) not fewer than queries (%d) — admission never batched", st.Batches, st.Queries)
	}
}
