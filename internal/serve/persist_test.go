package serve

import (
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"portal/internal/storage"
	"portal/internal/tree"
)

// TestServerWarmRestart is the tentpole's serving contract: a server
// restarted over the same data directory must answer every operator
// family identically to the server that built the trees — without
// rebuilding them.
func TestServerWarmRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dir := t.TempDir()
	cfg := Config{LeafSize: 16, Workers: 2, Tick: time.Millisecond, DataDir: dir}

	ptRows := randRows(rng, 400, 3)
	refRows := randRows(rng, 300, 3)
	qRows := randRows(rng, 25, 3)
	reqs := []*QueryRequest{
		{Dataset: "pts", Problem: "knn", K: 3},
		{Dataset: "pts", Problem: "2pc", Radius: 2},
		{Dataset: "ref/with slash", Problem: "kde", Sigma: 1.1, Tau: 1e-3, Points: qRows},
		{Dataset: "ref/with slash", Problem: "rangesearch", Lo: 0.5, Hi: 3, Points: qRows},
	}

	a := newTestServer(t, cfg)
	mustPut(t, a, "pts", storage.MustFromRows(ptRows))
	mustPut(t, a, "ref/with slash", storage.MustFromRows(refRows))
	want := make([]*QueryResponse, len(reqs))
	for i, req := range reqs {
		resp, err := a.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp
	}
	a.Close()

	b := newTestServer(t, cfg)
	n, err := b.LoadDataDir()
	if err != nil {
		t.Fatalf("warm restart reported errors: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d datasets, want 2", n)
	}
	for i, req := range reqs {
		resp, err := b.Query(req)
		if err != nil {
			t.Fatalf("%s after restart: %v", req.Problem, err)
		}
		w := want[i]
		if len(resp.Values) != len(w.Values) || len(resp.Args) != len(w.Args) ||
			len(resp.ArgLists) != len(w.ArgLists) || len(resp.ValueLists) != len(w.ValueLists) {
			t.Fatalf("%s: result shape changed across restart", req.Problem)
		}
		for j := range w.Values {
			if resp.Values[j] != w.Values[j] {
				t.Fatalf("%s: values[%d] = %v, want %v", req.Problem, j, resp.Values[j], w.Values[j])
			}
		}
		for j := range w.Args {
			if resp.Args[j] != w.Args[j] {
				t.Fatalf("%s: args[%d] = %d, want %d", req.Problem, j, resp.Args[j], w.Args[j])
			}
		}
		for j := range w.ArgLists {
			if len(resp.ArgLists[j]) != len(w.ArgLists[j]) {
				t.Fatalf("%s: arg list %d length changed across restart", req.Problem, j)
			}
			for k := range w.ArgLists[j] {
				if resp.ArgLists[j][k] != w.ArgLists[j][k] {
					t.Fatalf("%s: arg list %d[%d] changed across restart", req.Problem, j, k)
				}
			}
		}
		for j := range w.ValueLists {
			for k := range w.ValueLists[j] {
				if resp.ValueLists[j][k] != w.ValueLists[j][k] {
					t.Fatalf("%s: value list %d[%d] changed across restart", req.Problem, j, k)
				}
			}
		}
		if (w.Scalar == nil) != (resp.Scalar == nil) {
			t.Fatalf("%s: scalar presence changed across restart", req.Problem)
		}
		if w.Scalar != nil && *resp.Scalar != *w.Scalar {
			t.Fatalf("%s: scalar %v, want %v", req.Problem, *resp.Scalar, *w.Scalar)
		}
	}

	// Dropping removes the snapshot file: the next restart must not
	// resurrect the dataset.
	if !b.DropDataset("pts") {
		t.Fatal("drop failed")
	}
	b.Close()
	c := newTestServer(t, cfg)
	n, err = c.LoadDataDir()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d datasets after drop, want 1", n)
	}
	if _, err := c.Query(&QueryRequest{Dataset: "pts", Problem: "knn"}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("dropped dataset query error = %v, want ErrUnknownDataset", err)
	}
}

// TestLoadDataDirSkipsCorrupt pins the degraded-restart contract: a
// corrupt snapshot is reported, not fatal, and intact datasets still
// come up.
func TestLoadDataDirSkipsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	dir := t.TempDir()
	cfg := Config{LeafSize: 16, Workers: 2, Tick: time.Millisecond, DataDir: dir}

	a := newTestServer(t, cfg)
	mustPut(t, a, "good", storage.MustFromRows(randRows(rng, 200, 3)))
	a.Close()
	if err := os.WriteFile(filepath.Join(dir, "bad.snap"), []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, cfg)
	n, err := b.LoadDataDir()
	if n != 1 {
		t.Fatalf("restored %d datasets, want the 1 intact one", n)
	}
	if err == nil || !strings.Contains(err.Error(), "bad.snap") {
		t.Fatalf("corrupt snapshot not reported (err = %v)", err)
	}
	if _, err := b.Query(&QueryRequest{Dataset: "good", Problem: "knn"}); err != nil {
		t.Fatalf("intact dataset unusable after degraded restart: %v", err)
	}
}

// TestUnknownDatasetTyped pins the 404 contract end to end: the
// sentinel is matchable with errors.Is in-process and maps to
// http.StatusNotFound on the wire — no string matching anywhere.
func TestUnknownDatasetTyped(t *testing.T) {
	s := newTestServer(t, Config{Tick: time.Millisecond})
	_, err := s.Query(&QueryRequest{Dataset: "nope", Problem: "knn"})
	if !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("error %v does not match ErrUnknownDataset", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"dataset":"nope","problem":"knn"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset returned %d, want 404", resp.StatusCode)
	}
	// A known dataset with a bad request stays a 400, not a 404.
	rng := rand.New(rand.NewSource(41))
	mustPut(t, s, "pts", storage.MustFromRows(randRows(rng, 50, 3)))
	resp, err = http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"dataset":"pts","problem":"rangesearch","lo":5,"hi":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad rangesearch bounds returned %d, want 400", resp.StatusCode)
	}
}

// TestSnapshotMisuse pins the refcount guards: releasing more times
// than acquired panics at the offending call, and a dropped head can
// never be re-acquired.
func TestSnapshotMisuse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	reg := NewRegistry()
	data := storage.MustFromRows(randRows(rng, 60, 3))
	tr := tree.BuildKD(data, &tree.Options{LeafSize: 16})

	reg.Put("d", data, tr, 0)
	h, ok := reg.Acquire("d")
	if !ok {
		t.Fatal("Acquire failed on a live head")
	}
	h.Release()
	if !reg.Drop("d") {
		t.Fatal("Drop failed")
	}
	if _, ok := reg.Acquire("d"); ok {
		t.Fatal("Acquire succeeded after Drop")
	}
	// The head reference is gone and ours is released: one more
	// Release would drive the count negative and must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("extra Release did not panic")
		}
	}()
	h.Release()
}
