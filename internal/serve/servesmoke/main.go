// Command servesmoke is the end-to-end smoke test of the serving
// path, run by `make serve-smoke`: it starts a real portald process
// with a data directory, uploads a 10k-point CSV, runs kde and knn
// queries twice each — asserting the second of each hits the
// compiled-problem cache — exercises drop-and-reupload refcount
// draining, then kills the process and restarts it over the same data
// directory, asserting the dataset comes back without an upload and
// answers the same knn query byte-identically. Exits non-zero on any
// failure.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"portal/internal/metrics"
	"portal/internal/serve"
	"portal/internal/serve/client"
)

// ctx is the driver-wide context; per-call deadlines come from the
// client's default timeout.
var ctx = context.Background()

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: "+format+"\n", args...)
	os.Exit(1)
}

// portaldProc is one running portald with a connected client.
type portaldProc struct {
	cmd *exec.Cmd
	c   *client.Client
}

// startPortald launches portald on a free port and waits for
// readiness via GET /readyz — the same gate a load balancer would use
// — instead of blind retry-sleeping against the query API.
func startPortald(portald string, extra ...string) *portaldProc {
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "4"}, extra...)
	cmd := exec.Command(portald, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fail("starting portald: %v", err)
	}

	// portald prints "portald listening on <addr>" once bound.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		fail("portald never reported its listen address")
	}
	go func() { // drain any further output
		for sc.Scan() {
		}
	}()

	c := client.New("http://"+addr, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ready(ctx); err == nil {
			break
		} else if time.Now().After(deadline) {
			cmd.Process.Kill()
			fail("server never became ready: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return &portaldProc{cmd: cmd, c: c}
}

// scrapeQueries scrapes /metrics, validates the exposition, and
// returns the portal_queries_total sum across all label sets.
func scrapeQueries(c *client.Client) float64 {
	body, err := c.Metrics(ctx)
	if err != nil {
		fail("scraping /metrics: %v", err)
	}
	e, err := metrics.Validate(body)
	if err != nil {
		fail("/metrics exposition does not validate: %v", err)
	}
	return e.Sum("portal_queries_total")
}

// shutdown stops the process via SIGTERM and waits for a clean exit.
func (p *portaldProc) shutdown() {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fail("signalling portald: %v", err)
	}
	if err := p.cmd.Wait(); err != nil {
		fail("portald did not shut down cleanly: %v", err)
	}
}

func main() {
	portald := flag.String("portald", "", "path to the portald binary")
	csvPath := flag.String("csv", "", "path to the dataset CSV to upload")
	flag.Parse()
	if *portald == "" || *csvPath == "" {
		fail("both -portald and -csv are required")
	}
	dataDir, err := os.MkdirTemp("", "servesmoke-data")
	if err != nil {
		fail("data dir: %v", err)
	}
	defer os.RemoveAll(dataDir)

	p := startPortald(*portald, "-data-dir", dataDir)
	defer p.cmd.Process.Kill()
	c := p.c

	f, err := os.Open(*csvPath)
	if err != nil {
		fail("opening CSV: %v", err)
	}
	info, err := c.PutDatasetCSV(ctx, "smoke", f)
	f.Close()
	if err != nil {
		fail("uploading dataset: %v", err)
	}
	fmt.Printf("servesmoke: uploaded %q: n=%d d=%d version=%d build=%.2fms\n",
		info.Name, info.N, info.D, info.Version, float64(info.BuildNS)/1e6)
	if info.N < 10000 {
		fail("expected a 10k-point dataset, got n=%d", info.N)
	}

	// kde and knn, twice each: the repeat must skip Compile, and the
	// /metrics query counter must advance by exactly the queries sent.
	queriesBefore := scrapeQueries(c)
	for _, req := range []*serve.QueryRequest{
		{Dataset: "smoke", Problem: "kde", Tau: 1e-3, Stats: true},
		{Dataset: "smoke", Problem: "knn", K: 5, Stats: true},
	} {
		first, err := c.Query(ctx, req)
		if err != nil {
			fail("%s query: %v", req.Problem, err)
		}
		if first.CacheHit {
			fail("first %s query reported a cache hit", req.Problem)
		}
		second, err := c.Query(ctx, req)
		if err != nil {
			fail("repeat %s query: %v", req.Problem, err)
		}
		if !second.CacheHit {
			fail("repeat %s query did not hit the compiled-problem cache", req.Problem)
		}
		if second.Report == nil || second.Report.CompileCache == nil || second.Report.CompileCache.Hits < 1 {
			fail("repeat %s query's report is missing compile-cache hit counters", req.Problem)
		}
		fmt.Printf("servesmoke: %s: first %.2fms (miss), repeat %.2fms (hit)\n",
			req.Problem, float64(first.LatencyNS)/1e6, float64(second.LatencyNS)/1e6)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		fail("stats: %v", err)
	}
	if st.CompileCache.Hits < 2 {
		fail("server stats report %d cache hits, want >= 2", st.CompileCache.Hits)
	}

	// The exposition must validate and its query counter must have
	// advanced by the four queries just issued.
	queriesAfter := scrapeQueries(c)
	if got := queriesAfter - queriesBefore; got != 4 {
		fail("portal_queries_total advanced by %g across kde/knn, want 4", got)
	}
	fmt.Printf("servesmoke: /metrics query counters advanced %g -> %g\n",
		queriesBefore, queriesAfter)

	// Drop the dataset: with no in-flight queries the snapshot's
	// refcount must drain immediately (and its snapshot file go away).
	if err := c.DropDataset(ctx, "smoke"); err != nil {
		fail("dropping dataset: %v", err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		fail("stats after drop: %v", err)
	}
	if st.Registry.SnapshotsCreated != st.Registry.SnapshotsReclaimed {
		fail("refcounts did not drain: %d snapshots created, %d reclaimed",
			st.Registry.SnapshotsCreated, st.Registry.SnapshotsReclaimed)
	}
	fmt.Printf("servesmoke: refcounts drained (%d created, %d reclaimed)\n",
		st.Registry.SnapshotsCreated, st.Registry.SnapshotsReclaimed)

	// Warm-restart phase: re-upload, capture a knn answer, restart the
	// process over the same data directory, and require the restored
	// dataset to answer identically — with no upload and no rebuild.
	f, err = os.Open(*csvPath)
	if err != nil {
		fail("reopening CSV: %v", err)
	}
	if _, err := c.PutDatasetCSV(ctx, "smoke", f); err != nil {
		f.Close()
		fail("re-uploading dataset: %v", err)
	}
	f.Close()
	knnReq := &serve.QueryRequest{Dataset: "smoke", Problem: "knn", K: 3}
	want, err := c.Query(ctx, knnReq)
	if err != nil {
		fail("pre-restart knn query: %v", err)
	}
	p.shutdown()

	restart := time.Now()
	p2 := startPortald(*portald, "-data-dir", dataDir)
	defer p2.cmd.Process.Kill()
	infos, err := p2.c.Datasets(ctx)
	if err != nil {
		fail("listing datasets after restart: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "smoke" || infos[0].N != info.N {
		fail("warm restart did not restore the dataset (got %+v)", infos)
	}
	got, err := p2.c.Query(ctx, knnReq)
	if err != nil {
		fail("post-restart knn query: %v", err)
	}
	if len(got.ArgLists) != len(want.ArgLists) {
		fail("post-restart knn returned %d rows, want %d", len(got.ArgLists), len(want.ArgLists))
	}
	for i := range want.ArgLists {
		for j := range want.ArgLists[i] {
			if got.ArgLists[i][j] != want.ArgLists[i][j] ||
				got.ValueLists[i][j] != want.ValueLists[i][j] {
				fail("post-restart knn row %d differs from pre-restart answer", i)
			}
		}
	}
	fmt.Printf("servesmoke: warm restart restored %q and answered identically in %v\n",
		infos[0].Name, time.Since(restart))

	p2.shutdown()
	fmt.Println("servesmoke: PASS")
}
