package serve

import (
	"encoding/json"
	"sync"
	"time"

	"portal/internal/stats"
)

// QueryLogEntry is one captured query: identity, outcome, latency,
// the full per-request stats report, and — for trace-sampled queries
// — the Chrome trace JSON of its execution. Entries are what GET
// /debug/queries returns; a Perfetto-ready trace is one copy-paste
// away from a production slow query.
type QueryLogEntry struct {
	// Time is when the query completed.
	Time time.Time `json:"time"`
	// Dataset and Problem identify the query.
	Dataset string `json:"dataset"`
	Problem string `json:"problem"`
	// Outcome is "ok" or "error".
	Outcome string `json:"outcome"`
	// Error is the error text for error outcomes.
	Error string `json:"error,omitempty"`
	// LatencyNS is the server-side latency (admission → finalize).
	LatencyNS int64 `json:"latency_ns"`
	// BatchSize is the admission-tick batch the query rode.
	BatchSize int `json:"batch_size"`
	// Sampled marks queries picked by the 1-in-N trace sampler.
	Sampled bool `json:"sampled,omitempty"`
	// Report is the query's full stats report (always collected on
	// the serving path).
	Report *stats.Report `json:"report,omitempty"`
	// TraceJSON is the Chrome trace-event export of the query's
	// execution, present when the query was trace-sampled (load it in
	// ui.perfetto.dev).
	TraceJSON json.RawMessage `json:"trace,omitempty"`
}

// queryRing is a bounded, concurrency-safe ring of query log entries:
// constant memory no matter how many queries qualify, newest-first
// snapshots. Capturing a slow query is off the hot path (it already
// took longer than the slow threshold), so a mutex is fine here.
type queryRing struct {
	mu    sync.Mutex
	buf   []QueryLogEntry
	next  int
	total int64
}

func newQueryRing(capacity int) *queryRing {
	return &queryRing{buf: make([]QueryLogEntry, 0, capacity)}
}

// add records one entry, evicting the oldest when full.
func (r *queryRing) add(e QueryLogEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		r.next = len(r.buf) % cap(r.buf)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// snapshot returns the retained entries, newest first, plus the total
// ever recorded (so callers can tell how many were evicted).
func (r *queryRing) snapshot() ([]QueryLogEntry, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryLogEntry, 0, len(r.buf))
	// Entries are at positions next-1, next-2, ... modulo the filled
	// length once the ring has wrapped; before wrapping they occupy
	// buf[0:len) in insertion order.
	for i := 0; i < len(r.buf); i++ {
		idx := r.next - 1 - i
		for idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out, r.total
}
