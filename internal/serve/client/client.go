// Package client is a thin Go client for the portald HTTP API,
// sharing the wire types of internal/serve.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"portal/internal/serve"
)

// Client talks to one portald instance.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at base (e.g.
// "http://localhost:7070"). httpClient nil means http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

func (c *Client) do(method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// PutDatasetCSV uploads a dataset as CSV.
func (c *Client) PutDatasetCSV(name string, csv io.Reader) (serve.DatasetInfo, error) {
	var info serve.DatasetInfo
	err := c.do(http.MethodPut, "/datasets/"+name, "text/csv", csv, &info)
	return info, err
}

// PutDatasetRows uploads a dataset as a JSON array of rows.
func (c *Client) PutDatasetRows(name string, rows [][]float64) (serve.DatasetInfo, error) {
	body, err := json.Marshal(rows)
	if err != nil {
		return serve.DatasetInfo{}, err
	}
	var info serve.DatasetInfo
	err = c.do(http.MethodPut, "/datasets/"+name, "application/json", bytes.NewReader(body), &info)
	return info, err
}

// DropDataset removes a dataset head.
func (c *Client) DropDataset(name string) error {
	return c.do(http.MethodDelete, "/datasets/"+name, "", nil, nil)
}

// Datasets lists the published dataset heads.
func (c *Client) Datasets() ([]serve.DatasetInfo, error) {
	var out []serve.DatasetInfo
	err := c.do(http.MethodGet, "/datasets", "", nil, &out)
	return out, err
}

// Query runs one query.
func (c *Client) Query(req *serve.QueryRequest) (*serve.QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp serve.QueryResponse
	if err := c.do(http.MethodPost, "/query", "application/json", bytes.NewReader(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats() (serve.Stats, error) {
	var st serve.Stats
	err := c.do(http.MethodGet, "/stats", "", nil, &st)
	return st, err
}

// Health checks liveness.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", "", nil, nil)
}
