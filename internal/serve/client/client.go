// Package client is a thin Go client for the portald HTTP API,
// sharing the wire types of internal/serve.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"portal/internal/serve"
)

// DefaultTimeout is the per-call deadline applied when the caller's
// context carries none: long enough for a cold multi-second traversal,
// short enough that a wedged server cannot hang a caller forever.
const DefaultTimeout = 30 * time.Second

// Client talks to one portald instance. Every call takes a
// context.Context as its first argument; cancellation and deadlines
// propagate to the underlying HTTP request.
type Client struct {
	base    string
	http    *http.Client
	timeout time.Duration
}

// New returns a client for the server at base (e.g.
// "http://localhost:7070"). httpClient nil means http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		http:    httpClient,
		timeout: DefaultTimeout,
	}
}

// SetTimeout overrides the per-call deadline applied when the caller's
// context has none; d <= 0 disables the fallback deadline entirely.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// withDeadline applies the client's fallback timeout when ctx carries
// no deadline of its own.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok || c.timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// doRaw performs one request and returns the raw response body of a
// 2xx response (the /metrics scrape path, where the body is not JSON).
func (c *Client) doRaw(ctx context.Context, method, path, contentType string, body io.Reader) ([]byte, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return nil, fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	return raw, nil
}

func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	raw, err := c.doRaw(ctx, method, path, contentType, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// PutDatasetCSV uploads a dataset as CSV.
func (c *Client) PutDatasetCSV(ctx context.Context, name string, csv io.Reader) (serve.DatasetInfo, error) {
	var info serve.DatasetInfo
	err := c.do(ctx, http.MethodPut, "/datasets/"+name, "text/csv", csv, &info)
	return info, err
}

// PutDatasetRows uploads a dataset as a JSON array of rows.
func (c *Client) PutDatasetRows(ctx context.Context, name string, rows [][]float64) (serve.DatasetInfo, error) {
	body, err := json.Marshal(rows)
	if err != nil {
		return serve.DatasetInfo{}, err
	}
	var info serve.DatasetInfo
	err = c.do(ctx, http.MethodPut, "/datasets/"+name, "application/json", bytes.NewReader(body), &info)
	return info, err
}

// DropDataset removes a dataset head.
func (c *Client) DropDataset(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/datasets/"+name, "", nil, nil)
}

// Datasets lists the published dataset heads.
func (c *Client) Datasets(ctx context.Context) ([]serve.DatasetInfo, error) {
	var out []serve.DatasetInfo
	err := c.do(ctx, http.MethodGet, "/datasets", "", nil, &out)
	return out, err
}

// Query runs one query.
func (c *Client) Query(ctx context.Context, req *serve.QueryRequest) (*serve.QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp serve.QueryResponse
	if err := c.do(ctx, http.MethodPost, "/query", "application/json", bytes.NewReader(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (serve.Stats, error) {
	var st serve.Stats
	err := c.do(ctx, http.MethodGet, "/stats", "", nil, &st)
	return st, err
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", "", nil, nil)
}

// Ready checks readiness; a non-nil error means the server is up but
// still restoring (503) or unreachable.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", "", nil, nil)
}

// Metrics scrapes the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	return c.doRaw(ctx, http.MethodGet, "/metrics", "", nil)
}

// DebugQueries fetches the slow-query log and trace-sampled queries.
func (c *Client) DebugQueries(ctx context.Context) (serve.QueryLog, error) {
	var ql serve.QueryLog
	err := c.do(ctx, http.MethodGet, "/debug/queries", "", nil, &ql)
	return ql, err
}
