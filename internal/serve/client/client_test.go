package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// A canceled context must abort an in-flight call promptly — the
// client cannot hang on a stalled server — and the error must satisfy
// errors.Is(err, context.Canceled) so callers can tell cancellation
// from a server failure.
func TestQueryCancellation(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()

	c := New(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		err := c.Health(ctx)
		errc <- err
	}()

	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled call did not return within 5s")
	}
}

// With no caller deadline, the client's fallback timeout must bound
// the call; the error must report the deadline.
func TestDefaultTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()

	c := New(ts.URL, nil)
	c.SetTimeout(50 * time.Millisecond)
	start := time.Now()
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("call against a stalled server did not time out")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
}

// A caller-supplied deadline wins over the fallback: the fallback
// must not shorten (or extend) an explicit deadline.
func TestCallerDeadlineWins(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("ok\n"))
	}))
	defer ts.Close()

	c := New(ts.URL, nil)
	c.SetTimeout(time.Nanosecond) // fallback would fail instantly if applied
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("explicit-deadline call failed: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}
