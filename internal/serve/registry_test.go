package serve

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"portal/internal/codegen"
	"portal/internal/engine"
	"portal/internal/problems"
	"portal/internal/storage"
	"portal/internal/tree"
)

func randRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 5
		}
	}
	return rows
}

func TestRegistryAcquireReleaseReclaim(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reg := NewRegistry()
	data := storage.MustFromRows(randRows(rng, 100, 3))
	tr := tree.BuildKD(data, &tree.Options{LeafSize: 16})

	s1 := reg.Put("d", data, tr, 0)
	if s1.Refs() != 1 {
		t.Fatalf("fresh head refs = %d, want 1 (registry)", s1.Refs())
	}
	h, ok := reg.Acquire("d")
	if !ok || h != s1 {
		t.Fatal("Acquire did not return the head")
	}
	if h.Refs() != 2 {
		t.Fatalf("acquired refs = %d, want 2", h.Refs())
	}

	// Replace while a reader holds v1: v1 must survive until released.
	reg.Put("d", data, tr, 0)
	if got := reg.Stats(); got.SnapshotsReclaimed != 0 {
		t.Fatalf("v1 reclaimed while a reader still holds it (stats %+v)", got)
	}
	if s1.Refs() != 1 {
		t.Fatalf("retired v1 refs = %d, want 1 (the reader)", s1.Refs())
	}
	h.Release()
	if got := reg.Stats(); got.SnapshotsReclaimed != 1 {
		t.Fatalf("v1 not reclaimed after last reader released (stats %+v)", got)
	}

	// A reclaimed snapshot can never be resurrected.
	if s1.acquire() {
		t.Fatal("acquire succeeded on a reclaimed snapshot")
	}

	if !reg.Drop("d") {
		t.Fatal("Drop failed")
	}
	if got := reg.Stats(); got.SnapshotsReclaimed != 2 || got.Datasets != 0 {
		t.Fatalf("after drop: stats %+v, want 2 reclaimed, 0 datasets", got)
	}
	if _, ok := reg.Acquire("d"); ok {
		t.Fatal("Acquire succeeded after Drop")
	}
}

// expectedOutputs is one dataset's precomputed ground truth.
type expectedOutputs struct {
	knnArgs []int
	kdeVals []float64
	twoPC   float64
}

// TestSnapshotSwapUnderConcurrentLoad is the serving contract under
// -race: readers hammer one named dataset with ExecuteOn across
// operator families (knn, kde, 2pc) — all self-joins binding the
// snapshot's shared tree on both sides, all compiled through one
// shared Cache — while a writer repeatedly swaps in replacement
// datasets. Every reader must see an internally consistent snapshot
// (its results match that exact dataset's precomputed ground truth —
// a torn read would mix versions), and every retired version must be
// reclaimed once its in-flight readers drain.
func TestSnapshotSwapUnderConcurrentLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reg := NewRegistry()
	cache := engine.NewCache()
	cfg := engine.Config{LeafSize: 16}
	kcfg := cfg
	kcfg.Tau = 1e-3
	const sigma = 1.5
	const radius = 2.0

	run := func(p *engine.Problem, tr *tree.Tree, c engine.Config) *codegen.Output {
		t.Helper()
		out, err := p.ExecuteOn(tr, tr, c)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Precompute every replacement dataset and its ground truth before
	// any publishing, so readers can verify against immutable state
	// keyed by the snapshot's Data pointer.
	const versions = 4
	datasets := make([]*storage.Storage, versions)
	trees := make([]*tree.Tree, versions)
	truth := make(map[*storage.Storage]*expectedOutputs, versions)
	for v := 0; v < versions; v++ {
		n := 240 + 40*v
		datasets[v] = storage.MustFromRows(randRows(rng, n, 3))
		trees[v] = tree.BuildKD(datasets[v], &tree.Options{LeafSize: 16})
		pk, _, err := cache.Compile("knn", problems.KNNSpec(datasets[v], datasets[v], 1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		pd, _, err := cache.Compile("kde", problems.KDESpec(datasets[v], datasets[v], sigma), kcfg)
		if err != nil {
			t.Fatal(err)
		}
		pt, _, err := cache.Compile("2pc", problems.TwoPointSpec(datasets[v], radius), cfg)
		if err != nil {
			t.Fatal(err)
		}
		truth[datasets[v]] = &expectedOutputs{
			knnArgs: run(pk, trees[v], cfg).Args,
			kdeVals: run(pd, trees[v], kcfg).Values,
			twoPC:   run(pt, trees[v], cfg).Scalar,
		}
	}

	reg.Put("data", datasets[0], trees[0], 0)

	const readers = 8
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan string, readers*iters)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				snap, ok := reg.Acquire("data")
				if !ok {
					errs <- "Acquire failed while dataset published"
					return
				}
				want := truth[snap.Data]
				switch g % 3 {
				case 0:
					spec := problems.KNNSpec(snap.Data, snap.Data, 1)
					p, _, err := cache.Compile("knn", spec, cfg)
					if err != nil {
						errs <- err.Error()
					} else if out, err := p.ExecuteOn(snap.Tree, snap.Tree, cfg); err != nil {
						errs <- err.Error()
					} else {
						for q, a := range out.Args {
							if a != want.knnArgs[q] {
								errs <- "torn read: knn args mismatch vs snapshot truth"
								break
							}
						}
					}
				case 1:
					spec := problems.KDESpec(snap.Data, snap.Data, sigma)
					p, _, err := cache.Compile("kde", spec, kcfg)
					if err != nil {
						errs <- err.Error()
					} else if out, err := p.ExecuteOn(snap.Tree, snap.Tree, kcfg); err != nil {
						errs <- err.Error()
					} else {
						for q, v := range out.Values {
							if math.Abs(v-want.kdeVals[q]) > 1e-12*math.Max(1, math.Abs(want.kdeVals[q])) {
								errs <- "torn read: kde values mismatch vs snapshot truth"
								break
							}
						}
					}
				case 2:
					spec := problems.TwoPointSpec(snap.Data, radius)
					p, _, err := cache.Compile("2pc", spec, cfg)
					if err != nil {
						errs <- err.Error()
					} else if out, err := p.ExecuteOn(snap.Tree, snap.Tree, cfg); err != nil {
						errs <- err.Error()
					} else if out.Scalar != want.twoPC {
						errs <- "torn read: 2pc count mismatch vs snapshot truth"
					}
				}
				snap.Release()
			}
		}(g)
	}

	// Writer: cycle replacement datasets while the readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 12; i++ {
			v := i % versions
			reg.Put("data", datasets[v], trees[v], 0)
		}
	}()

	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// All readers released; only the final head survives.
	st := reg.Stats()
	if st.Datasets != 1 {
		t.Fatalf("datasets = %d, want 1", st.Datasets)
	}
	if live := st.SnapshotsCreated - st.SnapshotsReclaimed; live != 1 {
		t.Fatalf("live snapshots = %d (created %d, reclaimed %d), want exactly the head",
			live, st.SnapshotsCreated, st.SnapshotsReclaimed)
	}
	reg.Drop("data")
	st = reg.Stats()
	if st.SnapshotsCreated != st.SnapshotsReclaimed {
		t.Fatalf("after drop: %d created but %d reclaimed — refcounts failed to drain",
			st.SnapshotsCreated, st.SnapshotsReclaimed)
	}

	// The compile cache collapsed every (problem, shape) to one entry
	// per family despite dataset churn: knn(k=1) and 2pc hit across
	// replacements; kde's Silverman-free fixed sigma does too.
	if c := cache.Counters(); c.Misses > int64(3*versions) {
		t.Fatalf("cache misses = %d — dataset replacement should not recompile", c.Misses)
	}
}
