package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"portal/internal/engine"
	"portal/internal/lang"
	"portal/internal/metrics"
	"portal/internal/persist"
	"portal/internal/problems"
	"portal/internal/shard"
	"portal/internal/stats"
	"portal/internal/storage"
	"portal/internal/trace"
	"portal/internal/traverse"
	"portal/internal/tree"
)

// Config tunes the server.
type Config struct {
	// LeafSize is the tree leaf capacity for dataset and query-point
	// trees (default 32).
	LeafSize int
	// Workers is the traversal worker budget shared by each batch
	// tick; 0 means GOMAXPROCS.
	Workers int
	// Tick is the batching window: after the first query of a tick
	// arrives, the admitter collects further queries for this long
	// (or until MaxBatch) before running them as one multi-traversal.
	// Default 2ms.
	Tick time.Duration
	// MaxBatch caps queries per tick (default 64).
	MaxBatch int
	// DataDir, when set, persists every published dataset as a
	// zero-deserialization tree snapshot (internal/persist) under this
	// directory, and LoadDataDir restores them on restart without
	// rebuilding any tree.
	DataDir string
	// CacheSize bounds the compiled-problem cache (0 means
	// engine.DefaultCacheSize).
	CacheSize int
	// SlowQuery is the slow-query log threshold: queries whose
	// server-side latency reaches it are captured (with their full
	// stats report) into a bounded ring served at GET /debug/queries.
	// 0 disables the slow log.
	SlowQuery time.Duration
	// TraceSampleN turns on always-on execution-trace sampling: every
	// N-th query runs with a trace recorder attached and is captured
	// (report + Chrome trace JSON) into the sampled ring. 0 disables
	// sampling; 1 traces every query.
	TraceSampleN int
	// QueryLogSize caps each capture ring (slow and sampled); default
	// 64 entries.
	QueryLogSize int
	// Schedule selects the traversal scheduler for every served query
	// (the zero value is the work-stealing default;
	// traverse.ScheduleIList runs the two-tier interaction-list
	// schedule). The compiled-problem cache key is unaffected, so
	// flipping the schedule never fragments the cache.
	Schedule traverse.Schedule
	// Shards, when > 1, publishes every dataset with a pre-built
	// sharded partition and serves its queries through the spatially
	// sharded execution tier (engine.Config.Shards semantics). The
	// persisted snapshot format is unchanged: partitions are rebuilt at
	// load time.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.LeafSize <= 0 {
		c.LeafSize = 32
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Tick <= 0 {
		c.Tick = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueryLogSize <= 0 {
		c.QueryLogSize = 64
	}
	return c
}

// QueryRequest is one query against a named dataset. Problem selects
// the operator family: "knn" (K, default 1), "kde" (Sigma, default
// Silverman's rule; Tau, default 1e-3), "rangesearch" (Lo, Hi), or
// "2pc" (Radius; self-join only). Points, when present, are the query
// points; when absent the query is the self-join of the dataset
// against itself, binding the snapshot's tree on both sides with zero
// per-request build work.
type QueryRequest struct {
	Dataset string      `json:"dataset"`
	Problem string      `json:"problem"`
	K       int         `json:"k,omitempty"`
	Sigma   float64     `json:"sigma,omitempty"`
	Tau     float64     `json:"tau,omitempty"`
	Lo      float64     `json:"lo,omitempty"`
	Hi      float64     `json:"hi,omitempty"`
	Radius  float64     `json:"radius,omitempty"`
	Points  [][]float64 `json:"points,omitempty"`
	// Stats attaches the per-request stats.Report (with compile-cache
	// counters) to the response.
	Stats bool `json:"stats,omitempty"`
	// Trace additionally captures a per-request execution trace
	// profile on the report.
	Trace bool `json:"trace,omitempty"`
}

// QueryResponse carries one query's results. Exactly one result shape
// is populated, per problem family (knn k=1: Args+Values; knn k>1:
// ArgLists+ValueLists; kde: Values; rangesearch: ArgLists; 2pc:
// Scalar).
type QueryResponse struct {
	Values     []float64   `json:"values,omitempty"`
	Args       []int       `json:"args,omitempty"`
	ArgLists   [][]int     `json:"arg_lists,omitempty"`
	ValueLists [][]float64 `json:"value_lists,omitempty"`
	Scalar     *float64    `json:"scalar,omitempty"`
	// CacheHit reports whether the compiled problem came from the
	// compiled-problem cache (Compile and codegen skipped).
	CacheHit bool `json:"cache_hit"`
	// DatasetVersion is the snapshot version the query ran against.
	DatasetVersion int64 `json:"dataset_version"`
	// BatchSize is the number of queries in the tick this one rode.
	BatchSize int `json:"batch_size"`
	// LatencyNS is the server-side latency: admission through
	// finalize.
	LatencyNS int64 `json:"latency_ns"`
	// Report is the per-request observability report when requested.
	Report *stats.Report `json:"report,omitempty"`
}

// DatasetInfo describes one published dataset head.
type DatasetInfo struct {
	Name    string `json:"name"`
	Version int64  `json:"version"`
	N       int    `json:"n"`
	D       int    `json:"d"`
	Refs    int64  `json:"refs"`
	BuildNS int64  `json:"build_ns"`
}

// Stats is the server's observability snapshot.
type Stats struct {
	Queries      int64               `json:"queries"`
	Batches      int64               `json:"batches"`
	CompileCache stats.CacheCounters `json:"compile_cache"`
	Registry     RegistryStats       `json:"registry"`
	Datasets     []DatasetInfo       `json:"dataset_list,omitempty"`
}

// pending is one admitted query waiting for its tick.
type pending struct {
	item     *engine.BatchItem
	snap     *Snapshot
	hit      bool
	start    time.Time
	admitted time.Time
	batch    int
	done     chan struct{}
	// sampled marks a query picked by the 1-in-N trace sampler; rec
	// is its (or a Trace-requesting caller's) trace collector.
	sampled bool
	rec     *trace.Collector
	// qp/rp are the query- and reference-side partitions of a sharded
	// query (nil on the unsharded path). Sharded items skip the batch
	// multi-traversal and run through engine.ExecuteShardedOn instead.
	qp, rp *shard.Partition
}

// Server is the long-lived query engine: registry + compiled-problem
// cache + batching executor. It serves in-process callers via Query
// and HTTP callers via Handler (api.go).
type Server struct {
	cfg   Config
	reg   *Registry
	cache *engine.Cache

	queue chan *pending
	quit  chan struct{}
	wg    sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	queries atomic.Int64
	batches atomic.Int64

	// m is the continuous telemetry behind GET /metrics; slow and
	// sampled are the /debug/queries capture rings; seq drives the
	// 1-in-N trace sampler.
	m       *serverMetrics
	slow    *queryRing
	sampled *queryRing
	seq     atomic.Uint64

	// ready gates GET /readyz: servers with a DataDir report ready
	// only once LoadDataDir has finished restoring snapshots, so a
	// load balancer never routes to a replica still mmap-restoring.
	ready atomic.Bool
}

// NewServer starts a server (its batching goroutine runs until Close).
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		reg:   NewRegistry(),
		cache: engine.NewCacheSize(cfg.CacheSize),
		queue: make(chan *pending, 4*cfg.withDefaults().MaxBatch),
		quit:  make(chan struct{}),
	}
	s.slow = newQueryRing(s.cfg.QueryLogSize)
	s.sampled = newQueryRing(s.cfg.QueryLogSize)
	s.m = newServerMetrics(s)
	// A server with a data dir starts unready until LoadDataDir
	// finishes (or the operator overrides via SetReady); one without
	// has nothing to restore.
	s.ready.Store(s.cfg.DataDir == "")
	s.wg.Add(1)
	go s.batchLoop()
	return s
}

// Metrics exposes the server's metrics registry (the /metrics
// exposition source; tests and embedding binaries may register their
// own families on it).
func (s *Server) Metrics() *metrics.Registry { return s.m.reg }

// Ready reports whether startup restore has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// SetReady overrides the readiness state (embedding servers that
// manage their own restore sequencing).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Registry exposes the snapshot registry (tests and the smoke driver
// assert on its refcounts).
func (s *Server) Registry() *Registry { return s.reg }

// Close stops admitting queries, runs any already-admitted ones, and
// waits for the batcher to exit.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.quit)
	s.wg.Wait()
}

// PutDataset publishes data under name: builds the tree off to the
// side (parallel, under the server's worker budget) and swaps the
// head. With a DataDir, the built tree is also written as a snapshot
// file before the swap, so a crash after a successful Put can always
// warm-restart the dataset. Returns the new head snapshot.
func (s *Server) PutDataset(name string, data *storage.Storage) (*Snapshot, error) {
	start := time.Now()
	t := tree.BuildKD(data, &tree.Options{
		LeafSize: s.cfg.LeafSize,
		Parallel: s.cfg.Workers > 1,
		Workers:  s.cfg.Workers,
	})
	part := s.buildPartition(data)
	if s.cfg.DataDir != "" {
		path := s.snapshotPath(name)
		saveStart := time.Now()
		if err := persist.Save(path, t); err != nil {
			return nil, fmt.Errorf("serve: persist dataset %q: %w", name, err)
		}
		s.m.snapSave.Observe(time.Since(saveStart).Nanoseconds())
		if fi, err := os.Stat(path); err == nil {
			s.m.snapSaveBytes.Add(fi.Size())
		}
	}
	snap := s.reg.PutPartitioned(name, data, t, part, time.Since(start).Nanoseconds(), nil)
	s.m.observePartition(name, part)
	return snap, nil
}

// buildPartition pre-builds the sharded partition for a dataset being
// published (nil when the server is unsharded).
func (s *Server) buildPartition(data *storage.Storage) *shard.Partition {
	if s.cfg.Shards <= 1 {
		return nil
	}
	return shard.Split(data, s.shardOptions())
}

func (s *Server) shardOptions() shard.Options {
	return shard.Options{
		K:        s.cfg.Shards,
		LeafSize: s.cfg.LeafSize,
		Parallel: s.cfg.Workers > 1,
		Workers:  s.cfg.Workers,
	}
}

// DropDataset removes name's head, and its snapshot file under
// DataDir so a restart does not resurrect it.
func (s *Server) DropDataset(name string) bool {
	ok := s.reg.Drop(name)
	if ok && s.cfg.DataDir != "" {
		os.Remove(s.snapshotPath(name))
	}
	return ok
}

// snapshotPath maps a dataset name to its snapshot file. Names are
// path-escaped so arbitrary dataset names cannot traverse out of the
// data directory.
func (s *Server) snapshotPath(name string) string {
	return filepath.Join(s.cfg.DataDir, url.PathEscape(name)+snapExt)
}

const snapExt = ".snap"

// LoadDataDir restores every dataset snapshot under the configured
// DataDir — the warm-restart path. Each file is mmap-loaded with zero
// tree rebuild; the mapping is released when the dataset's refcount
// drains after a later replace or drop. Unreadable or corrupt files
// are skipped (the server still starts with whatever is intact) and
// reported joined into the returned error alongside the count of
// datasets restored.
func (s *Server) LoadDataDir() (int, error) {
	// However restore ends — clean, partial, or empty — the server is
	// ready afterwards: it serves whatever restored intact.
	defer s.ready.Store(true)
	if s.cfg.DataDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("serve: read data dir: %w", err)
	}
	var errs []error
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapExt) {
			continue
		}
		name, err := url.PathUnescape(strings.TrimSuffix(e.Name(), snapExt))
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: snapshot %s: undecodable name: %w", e.Name(), err))
			continue
		}
		loadStart := time.Now()
		l, err := persist.Load(filepath.Join(s.cfg.DataDir, e.Name()))
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: snapshot %s: %w", e.Name(), err))
			continue
		}
		s.m.snapLoad.Observe(time.Since(loadStart).Nanoseconds())
		s.m.snapLoadBytes.Add(l.Size)
		// The loaded tree's storage is the build-time reordered point
		// set; it serves as the dataset storage directly. Queries are
		// unaffected: results are reported in original indices via the
		// tree's index map, and self-joins bind the tree on both sides.
		// The snapshot artifact stays shard-agnostic; a sharded server
		// rebuilds its partition from the restored points at load time.
		part := s.buildPartition(l.Tree.Data)
		s.reg.PutPartitioned(name, l.Tree.Data, l.Tree, part, 0, func() { l.Release() })
		s.m.observePartition(name, part)
		loaded++
	}
	return loaded, errors.Join(errs...)
}

// Stats snapshots the server counters.
func (s *Server) Stats(withDatasets bool) Stats {
	st := Stats{
		Queries:      s.queries.Load(),
		Batches:      s.batches.Load(),
		CompileCache: s.cache.Counters(),
		Registry:     s.reg.Stats(),
	}
	if withDatasets {
		for _, snap := range s.reg.List() {
			st.Datasets = append(st.Datasets, DatasetInfo{
				Name:    snap.Name,
				Version: snap.Version,
				N:       snap.Data.Len(),
				D:       snap.Data.Dim(),
				Refs:    snap.Refs(),
				BuildNS: snap.BuildNS,
			})
		}
	}
	return st
}

// Query admits one request, waits for its tick to execute, and
// returns the response. Safe for arbitrary concurrent use.
func (s *Server) Query(req *QueryRequest) (*QueryResponse, error) {
	start := time.Now()
	snap, ok := s.reg.Acquire(req.Dataset)
	if !ok {
		s.m.observeQuery(req.Problem, req.Dataset, outcomeRejected, time.Since(start).Nanoseconds(), nil)
		return nil, fmt.Errorf("serve: %w %q", ErrUnknownDataset, req.Dataset)
	}
	defer snap.Release()
	s.m.refsHW.Max(snap.Refs())

	p, err := s.prepare(req, snap)
	if err != nil {
		s.m.observeQuery(req.Problem, req.Dataset, outcomeRejected, time.Since(start).Nanoseconds(), nil)
		return nil, err
	}
	p.start = start
	p.snap = snap

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.m.observeQuery(req.Problem, req.Dataset, outcomeRejected, time.Since(start).Nanoseconds(), nil)
		return nil, fmt.Errorf("serve: server closed")
	}
	p.admitted = time.Now()
	s.queue <- p
	s.closeMu.RUnlock()

	<-p.done
	s.queries.Add(1)
	s.finishQuery(req, p)
	if p.item.Err != nil {
		return nil, p.item.Err
	}
	return s.respond(req, p)
}

// Outcome label values — a closed set, per the cardinality rules.
const (
	outcomeOK = "ok"
	// outcomeError marks queries that were admitted but failed in
	// execution (bind/traverse/finalize).
	outcomeError = "error"
	// outcomeRejected marks queries refused before admission (unknown
	// dataset or problem, malformed points, closed server).
	outcomeRejected = "rejected"
)

// finishQuery is the per-query telemetry tail: observe the always-on
// metrics (allocation-free), then — only for queries that crossed the
// slow threshold or were trace-sampled — capture a log entry with the
// full report and any trace.
func (s *Server) finishQuery(req *QueryRequest, p *pending) {
	lat := time.Since(p.start)
	outcome := outcomeOK
	if p.item.Err != nil {
		outcome = outcomeError
	}
	var rep *stats.Report
	if p.item.Out != nil {
		rep = p.item.Out.Report
	}
	s.m.observeQuery(req.Problem, req.Dataset, outcome, lat.Nanoseconds(), rep)

	isSlow := s.cfg.SlowQuery > 0 && lat >= s.cfg.SlowQuery
	if !isSlow && !p.sampled {
		return
	}
	e := QueryLogEntry{
		Time:      time.Now(),
		Dataset:   req.Dataset,
		Problem:   req.Problem,
		Outcome:   outcome,
		LatencyNS: lat.Nanoseconds(),
		BatchSize: p.batch,
		Sampled:   p.sampled,
		Report:    rep,
	}
	if p.item.Err != nil {
		e.Error = p.item.Err.Error()
	}
	if p.rec != nil {
		var buf bytes.Buffer
		if err := p.rec.WriteChromeTrace(&buf); err == nil {
			e.TraceJSON = json.RawMessage(buf.Bytes())
		}
	}
	if p.sampled {
		s.m.sampledQueries.Inc()
		s.sampled.add(e)
	}
	if isSlow {
		s.m.slowQueries.Inc()
		s.slow.add(e)
	}
}

// prepare resolves the request to a compiled problem bound to trees —
// the front half of a query, off the batch path.
func (s *Server) prepare(req *QueryRequest, snap *Snapshot) (*pending, error) {
	var qd *storage.Storage
	var qt *tree.Tree
	selfJoin := len(req.Points) == 0
	if selfJoin {
		qd, qt = snap.Data, snap.Tree
	} else {
		var err error
		qd, err = storage.FromRows(req.Points)
		if err != nil {
			return nil, fmt.Errorf("serve: bad query points: %w", err)
		}
		if qd.Dim() != snap.Data.Dim() {
			return nil, fmt.Errorf("serve: query points are %d-dimensional, dataset %q is %d-dimensional",
				qd.Dim(), snap.Name, snap.Data.Dim())
		}
		qt = tree.BuildKD(qd, &tree.Options{LeafSize: s.cfg.LeafSize})
	}

	// Stats are always collected on the serving path: report assembly
	// is cheap next to the traversal it describes, and it is what lets
	// the metrics layer sample traversal counters at query end and the
	// slow-query log attach a full report — without ever touching the
	// traversal hot path. The response still carries the report only
	// when the caller asked.
	cfg := engine.Config{LeafSize: s.cfg.LeafSize, Schedule: s.cfg.Schedule, CollectStats: true}
	// The 1-in-N sampler: query number seq is sampled when
	// seq % N == 1 % N, which picks the very first query (fast signal
	// after startup) and handles N == 1 (trace everything).
	n := s.cfg.TraceSampleN
	sampled := n > 0 && s.seq.Add(1)%uint64(n) == 1%uint64(n)
	var rec *trace.Collector
	if req.Trace || sampled {
		rec = trace.New()
		cfg.Trace = rec
	}

	var spec *lang.PortalExpr
	name := req.Problem
	switch req.Problem {
	case "knn":
		k := req.K
		if k <= 0 {
			k = 1
		}
		spec = problems.KNNSpec(qd, snap.Data, k)
	case "kde":
		sigma := req.Sigma
		if sigma <= 0 {
			sigma = problems.SilvermanBandwidth(snap.Data)
		}
		cfg.Tau = req.Tau
		if cfg.Tau <= 0 {
			cfg.Tau = 1e-3
		}
		spec = problems.KDESpec(qd, snap.Data, sigma)
	case "rangesearch":
		if req.Hi <= req.Lo {
			return nil, fmt.Errorf("serve: rangesearch needs lo < hi (got %g, %g)", req.Lo, req.Hi)
		}
		spec = problems.RangeSearchSpec(qd, snap.Data, req.Lo, req.Hi)
	case "2pc":
		if !selfJoin {
			return nil, fmt.Errorf("serve: 2pc is a self-join; it takes no query points")
		}
		if req.Radius <= 0 {
			return nil, fmt.Errorf("serve: 2pc needs radius > 0")
		}
		spec = problems.TwoPointSpec(snap.Data, req.Radius)
	default:
		return nil, fmt.Errorf("serve: unknown problem %q (want knn, kde, rangesearch, or 2pc)", req.Problem)
	}

	prob, hit, err := s.cache.Compile(name, spec, cfg)
	if err != nil {
		return nil, err
	}
	p := &pending{
		item:    &engine.BatchItem{P: prob, Qt: qt, Rt: snap.Tree, Cfg: cfg},
		hit:     hit,
		done:    make(chan struct{}),
		sampled: sampled,
		rec:     rec,
	}
	if snap.Partition != nil {
		// Sharded head: reuse the published partition on the reference
		// side; self-joins reuse it on both sides, point queries route
		// onto the same domain split (building only the per-shard query
		// trees).
		p.rp = snap.Partition
		if selfJoin {
			p.qp = snap.Partition
		} else {
			p.qp = snap.Partition.RouteQueries(qd, shard.Options{LeafSize: s.cfg.LeafSize})
		}
		p.item.Cfg.Shards = s.cfg.Shards
	}
	return p, nil
}

// respond assembles the wire response from a completed item.
func (s *Server) respond(req *QueryRequest, p *pending) (*QueryResponse, error) {
	out := p.item.Out
	resp := &QueryResponse{
		CacheHit:       p.hit,
		DatasetVersion: p.snap.Version,
		BatchSize:      p.batch,
		LatencyNS:      time.Since(p.start).Nanoseconds(),
	}
	switch req.Problem {
	case "knn":
		if req.K <= 1 {
			resp.Args, resp.Values = out.Args, out.Values
		} else {
			resp.ArgLists, resp.ValueLists = out.ArgLists, out.ValueLists
		}
	case "kde":
		resp.Values = out.Values
	case "rangesearch":
		resp.ArgLists = out.ArgLists
	case "2pc":
		v := out.Scalar
		resp.Scalar = &v
	}
	if (req.Stats || req.Trace) && out.Report != nil {
		cc := s.cache.Counters()
		out.Report.CompileCache = &cc
		resp.Report = out.Report
	}
	return resp, nil
}

// batchLoop is the admission tick: the first admitted query opens a
// window; further queries join until the window closes or the batch
// fills; the whole tick runs as one multi-traversal over the shared
// worker budget.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	for {
		select {
		case p := <-s.queue:
			s.collectAndRun(p)
		case <-s.quit:
			// Drain queries admitted before Close flipped the flag.
			for {
				select {
				case p := <-s.queue:
					s.collectAndRun(p)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) collectAndRun(first *pending) {
	batch := []*pending{first}
	timer := time.NewTimer(s.cfg.Tick)
collect:
	for len(batch) < s.cfg.MaxBatch {
		select {
		case p := <-s.queue:
			batch = append(batch, p)
		case <-timer.C:
			break collect
		}
	}
	timer.Stop()

	s.m.batchSize.Observe(int64(len(batch)))
	plain := make([]*engine.BatchItem, 0, len(batch))
	for _, p := range batch {
		p.batch = len(batch)
		s.m.tickWait.Observe(time.Since(p.admitted).Nanoseconds())
		if p.rp == nil {
			plain = append(plain, p.item)
		}
	}
	engine.ExecuteOnBatch(plain, s.cfg.Workers)
	// Sharded items run after the tick's multi-traversal, each over the
	// full worker budget: the shard fan-out is itself the batch.
	for _, p := range batch {
		if p.rp != nil {
			s.runSharded(p)
		}
	}
	s.batches.Add(1)
	for _, p := range batch {
		close(p.done)
	}
}

// runSharded executes one sharded item over its snapshot's pre-built
// partitions. Failures stay per item, like the batch path's.
func (s *Server) runSharded(p *pending) {
	cfg := p.item.Cfg
	cfg.Parallel = s.cfg.Workers > 1
	cfg.Workers = s.cfg.Workers
	defer func() {
		if r := recover(); r != nil {
			p.item.Err = fmt.Errorf("serve: sharded query panicked: %v", r)
		}
	}()
	p.item.Out, p.item.Err = p.item.P.ExecuteShardedOn(p.qp, p.rp, cfg)
}
