package serve_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"portal/internal/engine"
	"portal/internal/problems"
	"portal/internal/serve"
	"portal/internal/serve/client"
	"portal/internal/storage"
)

func httpRandRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 5
		}
	}
	return rows
}

// End-to-end over HTTP through the Go client: upload (JSON and CSV),
// query, stats, replace, drop — asserting refcounts drain at each
// step.
func TestServerHTTPEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := serve.NewServer(serve.Config{LeafSize: 16, Workers: 2, Tick: time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	rows := httpRandRows(rng, 250, 3)
	info, err := c.PutDatasetRows(ctx, "pts", rows)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 250 || info.D != 3 || info.Version == 0 {
		t.Fatalf("bad dataset info %+v", info)
	}

	resp, err := c.Query(ctx, &serve.QueryRequest{Dataset: "pts", Problem: "2pc", Radius: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scalar == nil {
		t.Fatal("2pc response missing scalar")
	}
	data := storage.MustFromRows(rows)
	want, err := engine.BruteForce(problems.TwoPointSpec(data, 2))
	if err != nil {
		t.Fatal(err)
	}
	if *resp.Scalar != want.Scalar {
		t.Fatalf("2pc = %v, want %v", *resp.Scalar, want.Scalar)
	}

	// CSV upload path.
	var csv strings.Builder
	csv.WriteString("x,y\n")
	csv.WriteString("0.5,1.5\n1.25,-0.75\n2.0,3.0\n")
	csvInfo, err := c.PutDatasetCSV(ctx, "csvpts", strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	if csvInfo.N != 3 || csvInfo.D != 2 {
		t.Fatalf("CSV dataset info %+v, want n=3 d=2", csvInfo)
	}

	// Replace: version advances, old head reclaimed.
	info2, err := c.PutDatasetRows(ctx, "pts", httpRandRows(rng, 300, 3))
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version <= info.Version {
		t.Fatalf("replacement version %d not after %d", info2.Version, info.Version)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry.SnapshotsReclaimed != 1 {
		t.Fatalf("old head not reclaimed after replacement (stats %+v)", st.Registry)
	}
	if st.Queries < 1 || st.CompileCache.Misses < 1 {
		t.Fatalf("server counters not populated: %+v", st)
	}

	if err := c.DropDataset(ctx, "pts"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropDataset(ctx, "csvpts"); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry.SnapshotsCreated != st.Registry.SnapshotsReclaimed {
		t.Fatalf("refcounts did not drain after drop (stats %+v)", st.Registry)
	}
	if _, err := c.Query(ctx, &serve.QueryRequest{Dataset: "pts", Problem: "knn"}); err == nil {
		t.Fatal("query against dropped dataset did not error")
	}
}
