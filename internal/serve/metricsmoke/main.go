// Command metricsmoke is the end-to-end smoke test of portald's
// telemetry, run by `make metrics-smoke`: it starts a real portald
// with a microsecond slow-query threshold, trace-sample 1, and -pprof,
// uploads a 10k-point CSV, scrapes and validates GET /metrics before
// and after a burst of queries (counters must advance by exactly the
// queries sent, with latency histogram _count matching and sane
// outcome labels), then asserts the queries surfaced in GET
// /debug/queries — the slow ring with full stats reports and the
// sampled ring with Chrome trace JSON that passes
// trace.ValidateChromeTrace — and that /debug/pprof/ answers. Exits
// non-zero on any failure.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"portal/internal/metrics"
	"portal/internal/serve"
	"portal/internal/serve/client"
	"portal/internal/trace"
)

var ctx = context.Background()

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricsmoke: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	portald := flag.String("portald", "", "path to the portald binary")
	csvPath := flag.String("csv", "", "path to the dataset CSV to upload")
	flag.Parse()
	if *portald == "" || *csvPath == "" {
		fail("both -portald and -csv are required")
	}

	// 1µs slow threshold: every real query qualifies for the slow log.
	// trace-sample 1: every query carries a trace collector.
	cmd := exec.Command(*portald,
		"-addr", "127.0.0.1:0", "-workers", "4",
		"-slow-query", "1us", "-trace-sample", "1", "-pprof")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fail("starting portald: %v", err)
	}
	defer cmd.Process.Kill()

	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		fail("portald never reported its listen address")
	}
	go func() {
		for sc.Scan() {
		}
	}()

	c := client.New("http://"+addr, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ready(ctx); err == nil {
			break
		} else if time.Now().After(deadline) {
			fail("server never became ready: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Baseline scrape: must validate, report ready, and show zero
	// queries.
	e := scrape(c)
	if v, ok := e.Value("portal_ready"); !ok || v != 1 {
		fail("portal_ready = %g after /readyz success, want 1", v)
	}
	if got := e.Sum("portal_queries_total"); got != 0 {
		fail("portal_queries_total = %g before any query, want 0", got)
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		fail("opening CSV: %v", err)
	}
	info, err := c.PutDatasetCSV(ctx, "smoke", f)
	f.Close()
	if err != nil {
		fail("uploading dataset: %v", err)
	}
	fmt.Printf("metricsmoke: uploaded %q: n=%d d=%d\n", info.Name, info.N, info.D)

	// A burst of queries: 3 ok (one kde self-join — the slow one — and
	// two knn), plus 1 rejected (unknown problem).
	const okQueries = 3
	if _, err := c.Query(ctx, &serve.QueryRequest{Dataset: "smoke", Problem: "kde", Tau: 1e-3}); err != nil {
		fail("kde query: %v", err)
	}
	for i := 0; i < okQueries-1; i++ {
		if _, err := c.Query(ctx, &serve.QueryRequest{Dataset: "smoke", Problem: "knn", K: 3}); err != nil {
			fail("knn query: %v", err)
		}
	}
	if _, err := c.Query(ctx, &serve.QueryRequest{Dataset: "smoke", Problem: "nope"}); err == nil {
		fail("unknown-problem query did not error")
	}

	// Post-burst scrape: query counters and the latency histogram must
	// both have advanced by exactly the burst, with the rejection on
	// its own outcome label.
	e = scrape(c)
	if got := e.Sum("portal_queries_total"); got != okQueries+1 {
		fail("portal_queries_total = %g after burst, want %d", got, okQueries+1)
	}
	if got := e.Sum("portal_query_latency_seconds"); got != okQueries+1 {
		fail("portal_query_latency_seconds _count sum = %g, want %d", got, okQueries+1)
	}
	if v, ok := e.Value(`portal_queries_total{problem="nope",dataset="smoke",outcome="rejected"}`); !ok || v != 1 {
		fail("rejected-outcome counter = %g (present=%v), want 1", v, ok)
	}
	if v, ok := e.Value(`portal_queries_total{problem="kde",dataset="smoke",outcome="ok"}`); !ok || v != 1 {
		fail("kde ok-outcome counter = %g (present=%v), want 1", v, ok)
	}
	if got := e.Sum("portal_traverse_tasks_executed_total"); got <= 0 {
		fail("portal_traverse_tasks_executed_total = %g, want > 0", got)
	}
	if got := e.Sum("portal_batch_size"); got <= 0 {
		fail("portal_batch_size observed %g batches, want > 0", got)
	}
	fmt.Printf("metricsmoke: /metrics validated (%d series), counters advanced by %d\n",
		len(e.Samples), okQueries+1)

	// Every ok query was both slow (1µs threshold) and trace-sampled
	// (1-in-1): /debug/queries must hold them with reports, and the
	// sampled entries must carry valid Chrome traces.
	ql, err := c.DebugQueries(ctx)
	if err != nil {
		fail("/debug/queries: %v", err)
	}
	if ql.SlowTotal < okQueries {
		fail("slow ring recorded %d queries, want >= %d", ql.SlowTotal, okQueries)
	}
	if ql.SampledTotal < okQueries {
		fail("sampled ring recorded %d queries, want >= %d", ql.SampledTotal, okQueries)
	}
	for _, entry := range ql.Slow {
		if entry.Report == nil {
			fail("slow-query entry (%s/%s) is missing its stats report", entry.Problem, entry.Dataset)
		}
		if entry.LatencyNS < 1000 {
			fail("slow-query entry (%s) latency %dns is under the 1µs threshold", entry.Problem, entry.LatencyNS)
		}
	}
	traced := 0
	for _, entry := range ql.Sampled {
		if len(entry.TraceJSON) == 0 {
			fail("sampled entry (%s/%s) has no trace attached", entry.Problem, entry.Dataset)
		}
		counts, err := trace.ValidateChromeTrace(entry.TraceJSON)
		if err != nil {
			fail("sampled entry (%s) trace does not validate: %v", entry.Problem, err)
		}
		if counts["traverse"] == 0 {
			fail("sampled entry (%s) trace has no traverse spans", entry.Problem)
		}
		traced++
	}
	if traced < okQueries {
		fail("only %d sampled entries retained, want >= %d", traced, okQueries)
	}
	fmt.Printf("metricsmoke: /debug/queries holds %d slow + %d sampled entries, traces validate\n",
		ql.SlowTotal, ql.SampledTotal)

	// The slow/sampled counters in /metrics must agree with the rings.
	e = scrape(c)
	if got := e.Sum("portal_slow_queries_total"); got != float64(ql.SlowTotal) {
		fail("portal_slow_queries_total = %g, ring says %d", got, ql.SlowTotal)
	}

	// -pprof must expose the profile index.
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		fail("/debug/pprof/: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("/debug/pprof/ status %d, want 200", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fail("signalling portald: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		fail("portald did not shut down cleanly: %v", err)
	}
	fmt.Println("metricsmoke: PASS")
}

// scrape fetches and validates /metrics.
func scrape(c *client.Client) *metrics.Exposition {
	body, err := c.Metrics(ctx)
	if err != nil {
		fail("scraping /metrics: %v", err)
	}
	e, err := metrics.Validate(body)
	if err != nil {
		fail("/metrics does not validate: %v\n%s", err, body)
	}
	return e
}
