package serve

import (
	"runtime"
	"strconv"
	"time"

	"portal/internal/metrics"
	"portal/internal/shard"
	"portal/internal/stats"
)

// serverMetrics is the server's continuous telemetry: the always-on
// counters behind GET /metrics. Per-query updates go through
// observeQuery, which is allocation-free (guarded by AllocsPerRun in
// metrics_test.go); everything that is expensive to compute —
// registry sizes, cache counters, process stats — is a scrape-time
// callback instead of a per-query write.
//
// Label discipline (DESIGN §13): the only unbounded label is the
// dataset name, and every vec carries the metrics package's
// cardinality cap, so a client cycling dataset names degrades its own
// telemetry into the overflow series instead of growing server
// memory. Operator and outcome are closed sets.
type serverMetrics struct {
	reg *metrics.Registry

	// Query path: operator × dataset × outcome.
	queries *metrics.CounterVec
	latency *metrics.HistogramVec

	// Admission batching.
	batchSize *metrics.Histogram
	tickWait  *metrics.Histogram

	// Traversal runtime, sampled from each query's stats report at
	// query end — the traversal hot path itself is untouched.
	tasksExecuted *metrics.Counter
	tasksStolen   *metrics.Counter
	dequeHW       *metrics.Gauge
	batchFlushes  *metrics.Counter
	batchedBase   *metrics.Counter
	basePairs     *metrics.Counter
	prunedPairs   *metrics.Counter

	// Interaction-list schedule (Schedule = ilist): per-query list
	// counters and a list-length histogram, zero unless the server
	// runs with -schedule ilist and the operator is list-compatible.
	listsSwept  *metrics.Counter
	listEntries *metrics.Counter
	listLen     *metrics.Histogram

	// Registry high-water of any single snapshot's refcount.
	refsHW *metrics.Gauge

	// Persistence.
	snapSave      *metrics.Histogram
	snapLoad      *metrics.Histogram
	snapSaveBytes *metrics.Counter
	snapLoadBytes *metrics.Counter

	// Slow-query log and trace sampler.
	slowQueries    *metrics.Counter
	sampledQueries *metrics.Counter

	// Sharded execution. The shard label is bounded by the server's
	// static Shards config (never by request data), so dataset remains
	// the only unbounded label and the family cap still applies.
	shardPoints        *metrics.GaugeVec
	shardQueries       *metrics.Counter
	shardExchangeBytes *metrics.CounterVec
	shardImportedPts   *metrics.Counter
	shardImportedAggs  *metrics.Counter
}

// newServerMetrics registers the server's metric families. The
// scrape-time funcs read the server's own structures, so the bundle
// is built after registry and cache exist.
func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{
		reg: r,
		queries: r.CounterVec("portal_queries_total",
			"Queries served, by operator, dataset, and outcome.",
			"problem", "dataset", "outcome"),
		latency: r.HistogramVec("portal_query_latency_seconds",
			"Server-side query latency (admission through finalize), log-bucketed.",
			metrics.HistogramOpts{}, "problem", "dataset", "outcome"),
		batchSize: r.Histogram("portal_batch_size",
			"Queries per admission tick.",
			metrics.HistogramOpts{Base: 1, Buckets: 12, Div: 1}),
		tickWait: r.Histogram("portal_batch_tick_wait_seconds",
			"Per-query wait from admission to tick execution.",
			metrics.HistogramOpts{}),
		tasksExecuted: r.Counter("portal_traverse_tasks_executed_total",
			"Traversal tasks executed (sampled from per-query stats at query end)."),
		tasksStolen: r.Counter("portal_traverse_tasks_stolen_total",
			"Traversal tasks stolen from another worker's deque."),
		dequeHW: r.Gauge("portal_traverse_deque_high_water",
			"Peak occupancy observed on any worker deque since startup."),
		batchFlushes: r.Counter("portal_traverse_batch_flushes_total",
			"Reference-leaf interaction-buffer flushes."),
		batchedBase: r.Counter("portal_traverse_batched_base_cases_total",
			"Base cases executed through interaction batching."),
		basePairs: r.Counter("portal_traverse_base_case_pairs_total",
			"Point pairs enumerated by base cases (work not eliminated)."),
		prunedPairs: r.Counter("portal_traverse_eliminated_pairs_total",
			"Point pairs eliminated by pruning or approximation."),
		listsSwept: r.Counter("portal_traverse_lists_swept_total",
			"Per-query-leaf interaction lists executed by the ilist schedule's sweep phase."),
		listEntries: r.Counter("portal_traverse_list_entries_total",
			"Reference leaves recorded on swept interaction lists."),
		listLen: r.Histogram("portal_traverse_list_length",
			"Interaction-list length (reference leaves per query leaf), per query mean.",
			metrics.HistogramOpts{Base: 1, Buckets: 16, Div: 1}),
		refsHW: r.Gauge("portal_registry_refs_high_water",
			"Highest refcount observed on any single snapshot."),
		snapSave: r.Histogram("portal_snapshot_save_seconds",
			"Tree snapshot persist durations.", metrics.HistogramOpts{}),
		snapLoad: r.Histogram("portal_snapshot_load_seconds",
			"Tree snapshot mmap-load durations.", metrics.HistogramOpts{}),
		snapSaveBytes: r.Counter("portal_snapshot_save_bytes_total",
			"Bytes written by snapshot saves."),
		snapLoadBytes: r.Counter("portal_snapshot_load_bytes_total",
			"Bytes mapped by snapshot loads."),
		slowQueries: r.Counter("portal_slow_queries_total",
			"Queries at or over the slow-query threshold."),
		sampledQueries: r.Counter("portal_sampled_queries_total",
			"Queries picked by the 1-in-N trace sampler."),
		shardPoints: r.GaugeVec("portal_shard_points",
			"Points owned by each shard of a sharded dataset head.",
			"dataset", "shard"),
		shardQueries: r.Counter("portal_sharded_queries_total",
			"Queries served through the sharded execution tier."),
		shardExchangeBytes: r.CounterVec("portal_shard_exchange_bytes_total",
			"Locally-essential-tree boundary-exchange volume, by dataset.",
			"dataset"),
		shardImportedPts: r.Counter("portal_shard_imported_points_total",
			"Boundary points shipped between shards by the exchange."),
		shardImportedAggs: r.Counter("portal_shard_imported_aggregates_total",
			"Pruned-summary aggregate entries shipped between shards."),
	}

	// Scrape-time reads of state that already has its own counters —
	// exposed without double counting or per-query writes.
	r.GaugeFunc("portal_registry_datasets",
		"Live named dataset heads.",
		func() float64 { return float64(s.reg.Stats().Datasets) })
	r.CounterFunc("portal_registry_snapshots_created_total",
		"Snapshots published since startup.",
		func() float64 { return float64(s.reg.Stats().SnapshotsCreated) })
	r.CounterFunc("portal_registry_snapshots_reclaimed_total",
		"Snapshots whose refcount drained to zero.",
		func() float64 { return float64(s.reg.Stats().SnapshotsReclaimed) })
	r.CounterFunc("portal_compile_cache_hits_total",
		"Compiled-problem cache hits.",
		func() float64 { return float64(s.cache.Counters().Hits) })
	r.CounterFunc("portal_compile_cache_misses_total",
		"Compiled-problem cache misses (full compiles).",
		func() float64 { return float64(s.cache.Counters().Misses) })
	r.CounterFunc("portal_compile_cache_evictions_total",
		"Compiled problems evicted by the cache's LRU bound.",
		func() float64 { return float64(s.cache.Counters().Evictions) })
	r.CounterFunc("portal_batches_total",
		"Admission ticks executed.",
		func() float64 { return float64(s.batches.Load()) })
	r.GaugeFunc("portal_ready",
		"1 once startup restore has completed, else 0.",
		func() float64 {
			if s.Ready() {
				return 1
			}
			return 0
		})

	// Process-level basics, so one scrape answers "is it alive and
	// how big is it" without a sidecar exporter.
	start := time.Now()
	r.GaugeFunc("portal_process_uptime_seconds",
		"Seconds since server construction.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("portal_process_goroutines",
		"Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("portal_process_heap_alloc_bytes",
		"Heap bytes in use (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("portal_process_gc_total",
		"Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	return m
}

// observeQuery records one finished query: outcome counter, latency
// histogram, and the traversal counters sampled from the query's
// stats report. Allocation-free — this runs on every query.
func (m *serverMetrics) observeQuery(problem, dataset, outcome string, latencyNS int64, rep *stats.Report) {
	m.queries.With3(problem, dataset, outcome).Inc()
	m.latency.With3(problem, dataset, outcome).Observe(latencyNS)
	if rep == nil {
		return
	}
	t := &rep.Traversal
	m.tasksExecuted.Add(t.TasksExecuted)
	m.tasksStolen.Add(t.TasksStolen)
	m.dequeHW.Max(t.DequeHighWater)
	m.batchFlushes.Add(t.BatchFlushes)
	m.batchedBase.Add(t.BatchedBaseCases)
	m.basePairs.Add(t.BaseCasePairs)
	m.prunedPairs.Add(t.EliminatedPairs())
	if t.ListsSwept > 0 {
		m.listsSwept.Add(t.ListsSwept)
		m.listEntries.Add(t.ListEntries)
		m.listLen.Observe(t.ListEntries / t.ListsSwept)
	}
	if sh := rep.Sharding; sh != nil {
		m.shardQueries.Inc()
		m.shardExchangeBytes.With1(dataset).Add(sh.ExchangeSummaryBytes)
		for i := range sh.PerShard {
			m.shardImportedPts.Add(sh.PerShard[i].ImportedPoints)
			m.shardImportedAggs.Add(sh.PerShard[i].ImportedAggregates)
		}
	}
}

// observePartition publishes the per-shard ownership gauges for a
// newly published (or restored) sharded dataset head. No-op for
// unsharded heads.
func (m *serverMetrics) observePartition(dataset string, p *shard.Partition) {
	if p == nil {
		return
	}
	for i := range p.Pieces {
		m.shardPoints.With2(dataset, strconv.Itoa(i)).Set(int64(len(p.Pieces[i].Orig)))
	}
}
