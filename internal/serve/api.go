package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"portal/internal/metrics"
	"portal/internal/storage"
)

// API endpoints:
//
//	PUT    /datasets/{name}   upload a dataset (CSV body, or a JSON
//	                          array of rows with Content-Type
//	                          application/json); builds the tree off
//	                          to the side and swaps the head
//	GET    /datasets          list dataset heads
//	DELETE /datasets/{name}   drop a dataset head
//	POST   /query             run a QueryRequest, returns QueryResponse
//	GET    /stats             server stats (queries, batches, cache
//	                          counters, registry refcounts)
//	GET    /healthz           liveness (200 as long as the process
//	                          serves HTTP)
//	GET    /readyz            readiness: 200 once startup restore has
//	                          completed, 503 before — the load-balancer
//	                          gate
//	GET    /metrics           Prometheus text exposition
//	GET    /debug/queries     slow-query log and trace-sampled queries
//	                          (bounded rings, newest first)
//
// Errors are JSON objects {"error": "..."} with a 4xx/5xx status.

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /datasets/{name}", s.handlePutDataset)
	mux.HandleFunc("DELETE /datasets/{name}", s.handleDropDataset)
	mux.HandleFunc("GET /datasets", s.handleListDatasets)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	return mux
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		http.Error(w, "restoring", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	s.m.reg.WriteProm(w)
}

// QueryLog is the GET /debug/queries response: the slow-query and
// trace-sampled capture rings, newest first, plus the sampling config
// so a reader can interpret them.
type QueryLog struct {
	SlowThresholdNS int64           `json:"slow_threshold_ns"`
	TraceSampleN    int             `json:"trace_sample_n"`
	SlowTotal       int64           `json:"slow_total"`
	SampledTotal    int64           `json:"sampled_total"`
	Slow            []QueryLogEntry `json:"slow"`
	Sampled         []QueryLogEntry `json:"sampled"`
}

func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	slow, slowTotal := s.slow.snapshot()
	sampled, sampledTotal := s.sampled.snapshot()
	writeJSON(w, http.StatusOK, QueryLog{
		SlowThresholdNS: s.cfg.SlowQuery.Nanoseconds(),
		TraceSampleN:    s.cfg.TraceSampleN,
		SlowTotal:       slowTotal,
		SampledTotal:    sampledTotal,
		Slow:            slow,
		Sampled:         sampled,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handlePutDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty dataset name"))
		return
	}
	var data *storage.Storage
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var rows [][]float64
		if err := json.NewDecoder(r.Body).Decode(&rows); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad JSON rows: %w", err))
			return
		}
		data, err = storage.FromRows(rows)
	} else {
		data, err = storage.ReadCSV(r.Body)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap, err := s.PutDataset(name, data)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, DatasetInfo{
		Name:    snap.Name,
		Version: snap.Version,
		N:       snap.Data.Len(),
		D:       snap.Data.Dim(),
		Refs:    snap.Refs(),
		BuildNS: snap.BuildNS,
	})
}

func (s *Server) handleDropDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.DropDataset(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown dataset %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats(true).Datasets)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad query: %w", err))
		return
	}
	resp, err := s.Query(&req)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrUnknownDataset) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats(true))
}
