package serve

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"portal/internal/stats"
	"portal/internal/storage"
)

func metricsRandRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 5
		}
	}
	return rows
}

// The acceptance check for the latency histogram: drive real queries,
// measure each caller-side, and require the histogram's p50 and p99
// buckets to land within one bucket of the externally measured
// percentiles — log-bucketing loses resolution, never accuracy.
func TestLatencyHistogramReconciles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewServer(Config{LeafSize: 16, Workers: 2, Tick: time.Millisecond})
	defer s.Close()
	data := storage.MustFromRows(metricsRandRows(rng, 2000, 3))
	if _, err := s.PutDataset("recon", data); err != nil {
		t.Fatal(err)
	}

	const reps = 40
	pts := metricsRandRows(rng, 8, 3)
	measured := make([]int64, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if _, err := s.Query(&QueryRequest{Dataset: "recon", Problem: "knn", K: 3, Points: pts}); err != nil {
			t.Fatal(err)
		}
		measured = append(measured, time.Since(t0).Nanoseconds())
	}
	sort.Slice(measured, func(i, j int) bool { return measured[i] < measured[j] })

	h := s.m.latency.With3("knn", "recon", "ok")
	if h.Count() != reps {
		t.Fatalf("histogram holds %d observations, want %d", h.Count(), reps)
	}
	for _, q := range []float64{0.50, 0.99} {
		idx := int(q*float64(reps-1) + 0.5)
		extBucket := h.BucketOf(measured[idx])
		histBucket := h.QuantileBucket(q)
		if diff := extBucket - histBucket; diff < -1 || diff > 1 {
			t.Errorf("p%.0f: externally measured %v lands in bucket %d, histogram says %d (> 1 apart)",
				q*100, time.Duration(measured[idx]), extBucket, histBucket)
		}
	}
}

// observeQuery is on every query's path; it must not allocate once
// its label sets exist.
func TestObserveQueryZeroAlloc(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	rep := &stats.Report{}
	rep.Traversal.TasksExecuted = 7
	rep.Traversal.BaseCasePairs = 100
	// First call creates the (problem, dataset, outcome) series.
	s.m.observeQuery("knn", "ds", "ok", 12345, rep)
	if n := testing.AllocsPerRun(100, func() {
		s.m.observeQuery("knn", "ds", "ok", 54321, rep)
	}); n != 0 {
		t.Fatalf("observeQuery allocates %.1f times per query, want 0", n)
	}
}

// The query rings must evict oldest-first and report totals across
// evictions.
func TestQueryRingEviction(t *testing.T) {
	r := newQueryRing(3)
	for i := 0; i < 5; i++ {
		r.add(QueryLogEntry{LatencyNS: int64(i)})
	}
	got, total := r.snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	for i, want := range []int64{4, 3, 2} { // newest first
		if got[i].LatencyNS != want {
			t.Fatalf("entry %d latency = %d, want %d", i, got[i].LatencyNS, want)
		}
	}
}

// Rejected queries must still be counted, on their own outcome label.
func TestRejectedQueriesCounted(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if _, err := s.Query(&QueryRequest{Dataset: "nope", Problem: "knn"}); err == nil {
		t.Fatal("query against unknown dataset did not error")
	}
	if got := s.m.queries.With3("knn", "nope", outcomeRejected).Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}
