// Package lang implements the Portal language surface (paper Section
// III): the operator set of Table I, layers, and the PortalExpr object
// that chains layers into a problem specification. It also implements
// the problem classification of Section II-B (pruning vs approximation
// problems) and the validity checks of Section II (operator
// decomposability, kernel monotonicity).
package lang

import (
	"errors"
	"fmt"

	"portal/internal/expr"
	"portal/internal/storage"
)

// Op is a Portal reduction operator (Table I).
type Op int

// The Portal operators. FORALL is the sole "All" operator; SUM, PROD,
// ARGMIN, ARGMAX, MIN, and MAX are "Single" variable reduction
// operators; the K-variants plus UNION and UNIONARG are "Multi"
// variable reduction operators.
const (
	FORALL Op = iota
	SUM
	PROD
	ARGMIN
	ARGMAX
	MIN
	MAX
	UNION
	UNIONARG
	KARGMIN
	KARGMAX
	KMIN
	KMAX
)

var opNames = map[Op]string{
	FORALL: "FORALL", SUM: "SUM", PROD: "PROD",
	ARGMIN: "ARGMIN", ARGMAX: "ARGMAX", MIN: "MIN", MAX: "MAX",
	UNION: "UNION", UNIONARG: "UNIONARG",
	KARGMIN: "KARGMIN", KARGMAX: "KARGMAX", KMIN: "KMIN", KMAX: "KMAX",
}

// String returns the PortalOp:: name.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Category is the operator classification of Table I.
type Category int

// Operator categories.
const (
	// All operators return every input (no filtering).
	All Category = iota
	// Single variable reduction operators reduce a set to one value.
	Single
	// Multi variable reduction operators reduce a set to a smaller
	// set, usually of a specified length k.
	Multi
)

// String returns the Table I category name.
func (c Category) String() string {
	switch c {
	case All:
		return "All"
	case Single:
		return "Single"
	case Multi:
		return "Multi"
	default:
		return "?"
	}
}

// Category returns the Table I category of the operator.
func (op Op) Category() Category {
	switch op {
	case FORALL:
		return All
	case SUM, PROD, ARGMIN, ARGMAX, MIN, MAX:
		return Single
	default:
		return Multi
	}
}

// Comparative reports whether the operator filters by comparison —
// the property that classifies a problem as a pruning problem
// (Section II-B: "Comparative operators such as min or max result in
// a pruning problem").
func (op Op) Comparative() bool {
	switch op {
	case ARGMIN, ARGMAX, MIN, MAX, KARGMIN, KARGMAX, KMIN, KMAX:
		return true
	default:
		return false
	}
}

// Arithmetic reports whether the operator accumulates contributions
// from every point (Σ or Π), which makes the problem an approximation
// problem when the kernel is non-comparative.
func (op Op) Arithmetic() bool { return op == SUM || op == PROD }

// Decomposable reports whether the operator satisfies the
// decomposability property over datasets (Section II): the reduction
// over a set equals the reduction of reductions over any partition.
// Every Table I operator is decomposable; the method exists so the
// validator can reject future non-decomposable extensions explicitly.
func (op Op) Decomposable() bool {
	_, ok := opNames[op]
	return ok
}

// NeedsK reports whether the operator requires a reduction length k.
func (op Op) NeedsK() bool {
	switch op {
	case KARGMIN, KARGMAX, KMIN, KMAX:
		return true
	default:
		return false
	}
}

// ReturnsIndices reports whether the operator's output is made of
// reference indices rather than kernel values.
func (op Op) ReturnsIndices() bool {
	switch op {
	case ARGMIN, ARGMAX, KARGMIN, KARGMAX, UNIONARG:
		return true
	default:
		return false
	}
}

// Layer couples an operator with a dataset and an optional
// kernel/modifying function (paper Section III: "Problems are built up
// by chaining multiple layers").
type Layer struct {
	// Op is the layer's reduction operator.
	Op Op
	// K is the reduction length for Multi operators that need one.
	K int
	// Data is the layer's dataset.
	Data *storage.Storage
	// Kernel is the kernel function (required on the innermost layer)
	// or modifying function (optional on other layers).
	Kernel *expr.Kernel
}

// Class is the problem classification of Section II-B.
type Class int

// Problem classes.
const (
	// PruneClass problems discard subtrees with no accuracy loss
	// (comparative operators or comparative kernels).
	PruneClass Class = iota
	// ApproxClass problems trade accuracy for speed by approximating
	// node contributions (arithmetic operators, non-comparative
	// kernels).
	ApproxClass
)

// String names the class.
func (c Class) String() string {
	if c == PruneClass {
		return "prune"
	}
	return "approximate"
}

// PortalExpr is the main object holding a problem definition. Layers
// are added outermost-first, mirroring `expr.addLayer(...)` order in
// the paper's code listings.
type PortalExpr struct {
	layers []Layer
}

// AddLayer appends a layer. The first call defines the outermost
// layer. kernel may be nil for non-innermost layers.
func (e *PortalExpr) AddLayer(op Op, data *storage.Storage, kernel *expr.Kernel) *PortalExpr {
	e.layers = append(e.layers, Layer{Op: op, Data: data, Kernel: kernel})
	return e
}

// AddLayerK appends a layer with a Multi operator requiring a
// reduction length k, e.g. (PortalOp::KARGMIN, k) in the paper.
func (e *PortalExpr) AddLayerK(op Op, k int, data *storage.Storage, kernel *expr.Kernel) *PortalExpr {
	e.layers = append(e.layers, Layer{Op: op, K: k, Data: data, Kernel: kernel})
	return e
}

// Layers returns the layer chain, outermost first.
func (e *PortalExpr) Layers() []Layer { return e.layers }

// Outer returns the outermost layer.
func (e *PortalExpr) Outer() Layer { return e.layers[0] }

// Inner returns the innermost layer.
func (e *PortalExpr) Inner() Layer { return e.layers[len(e.layers)-1] }

// Kernel returns the innermost layer's kernel function.
func (e *PortalExpr) Kernel() *expr.Kernel { return e.Inner().Kernel }

// Validation errors.
var (
	ErrNoLayers        = errors.New("lang: PortalExpr has no layers")
	ErrTooManyLayers   = errors.New("lang: this build supports two-layer (m=2) problems; compose more layers at the problem level")
	ErrNoKernel        = errors.New("lang: innermost layer requires a kernel function")
	ErrMissingK        = errors.New("lang: operator requires a reduction length k > 0")
	ErrNoData          = errors.New("lang: layer has no dataset")
	ErrDimMismatch     = errors.New("lang: layer datasets have different dimensionality")
	ErrNotDecomposable = errors.New("lang: operator violates the decomposability property")
	ErrInnerForall     = errors.New("lang: FORALL cannot be the innermost reduction")
)

// Validate checks the specification against the structural rules of
// Sections II and III.
func (e *PortalExpr) Validate() error {
	if len(e.layers) == 0 {
		return ErrNoLayers
	}
	if len(e.layers) > 2 {
		return ErrTooManyLayers
	}
	for i, l := range e.layers {
		if !l.Op.Decomposable() {
			return fmt.Errorf("%w: %s", ErrNotDecomposable, l.Op)
		}
		if l.Data == nil {
			return fmt.Errorf("%w (layer %d)", ErrNoData, i)
		}
		if l.Op.NeedsK() && l.K <= 0 {
			return fmt.Errorf("%w: %s (layer %d)", ErrMissingK, l.Op, i)
		}
	}
	if e.Inner().Kernel == nil {
		return ErrNoKernel
	}
	if len(e.layers) == 2 {
		if e.Inner().Op == FORALL {
			return ErrInnerForall
		}
		if e.layers[0].Data.Dim() != e.layers[1].Data.Dim() {
			return fmt.Errorf("%w: %d vs %d", ErrDimMismatch,
				e.layers[0].Data.Dim(), e.layers[1].Data.Dim())
		}
	}
	return nil
}

// Classify determines whether the problem is a pruning or an
// approximation problem (Section II-B): comparative operators or a
// comparative kernel make it a pruning problem; purely arithmetic
// operators with a non-comparative kernel make it an approximation
// problem.
func (e *PortalExpr) Classify() Class {
	for _, l := range e.layers {
		if l.Op.Comparative() {
			return PruneClass
		}
	}
	if k := e.Kernel(); k != nil && k.IsComparative() {
		return PruneClass
	}
	if e.Inner().Op == UNIONARG || e.Inner().Op == UNION {
		// ∪/∪arg without a comparative kernel returns everything;
		// treat as a pruning problem with nothing prunable (the
		// traversal degenerates to base cases), which is still exact.
		return PruneClass
	}
	return ApproxClass
}

// String renders the specification like the paper's code listings.
func (e *PortalExpr) String() string {
	s := "PortalExpr{"
	for i, l := range e.layers {
		if i > 0 {
			s += "; "
		}
		s += l.Op.String()
		if l.Op.NeedsK() {
			s += fmt.Sprintf("(k=%d)", l.K)
		}
		if l.Kernel != nil {
			s += ", " + l.Kernel.String()
		}
	}
	return s + "}"
}
