package lang

import (
	"errors"
	"strings"
	"testing"

	"portal/internal/expr"
	"portal/internal/geom"
	"portal/internal/storage"
)

func twoD() (*storage.Storage, *storage.Storage) {
	q := storage.MustFromRows([][]float64{{0, 0}, {1, 1}})
	r := storage.MustFromRows([][]float64{{2, 2}, {3, 3}, {4, 4}})
	return q, r
}

// Table I taxonomy: every operator is in its documented category.
func TestOperatorTaxonomyTableI(t *testing.T) {
	want := map[Op]Category{
		FORALL:   All,
		SUM:      Single,
		PROD:     Single,
		ARGMIN:   Single,
		ARGMAX:   Single,
		MIN:      Single,
		MAX:      Single,
		UNION:    Multi,
		UNIONARG: Multi,
		KARGMIN:  Multi,
		KARGMAX:  Multi,
		KMIN:     Multi,
		KMAX:     Multi,
	}
	if len(want) != 13 {
		t.Fatal("expected 13 operators")
	}
	for op, cat := range want {
		if op.Category() != cat {
			t.Errorf("%s category = %v, want %v", op, op.Category(), cat)
		}
	}
}

func TestOperatorPredicates(t *testing.T) {
	comparative := []Op{ARGMIN, ARGMAX, MIN, MAX, KARGMIN, KARGMAX, KMIN, KMAX}
	for _, op := range comparative {
		if !op.Comparative() {
			t.Errorf("%s should be comparative", op)
		}
	}
	for _, op := range []Op{FORALL, SUM, PROD, UNION, UNIONARG} {
		if op.Comparative() {
			t.Errorf("%s should not be comparative", op)
		}
	}
	if !SUM.Arithmetic() || !PROD.Arithmetic() || MIN.Arithmetic() {
		t.Error("Arithmetic predicate wrong")
	}
	for op := FORALL; op <= KMAX; op++ {
		if !op.Decomposable() {
			t.Errorf("%s should be decomposable", op)
		}
	}
	if Op(99).Decomposable() {
		t.Error("unknown op should not be decomposable")
	}
	needK := []Op{KARGMIN, KARGMAX, KMIN, KMAX}
	for _, op := range needK {
		if !op.NeedsK() {
			t.Errorf("%s needs k", op)
		}
	}
	if UNION.NeedsK() || UNIONARG.NeedsK() {
		t.Error("UNION/UNIONARG take no k (paper: 'except ∪ and ∪arg')")
	}
	idx := []Op{ARGMIN, ARGMAX, KARGMIN, KARGMAX, UNIONARG}
	for _, op := range idx {
		if !op.ReturnsIndices() {
			t.Errorf("%s returns indices", op)
		}
	}
	if MIN.ReturnsIndices() || SUM.ReturnsIndices() {
		t.Error("value ops should not return indices")
	}
}

func TestOpStrings(t *testing.T) {
	if FORALL.String() != "FORALL" || KARGMIN.String() != "KARGMIN" {
		t.Fatal("op names wrong")
	}
	if !strings.HasPrefix(Op(42).String(), "Op(") {
		t.Fatal("unknown op should fall back to Op(n)")
	}
	if All.String() != "All" || Single.String() != "Single" || Multi.String() != "Multi" || Category(9).String() != "?" {
		t.Fatal("category names wrong")
	}
	if PruneClass.String() != "prune" || ApproxClass.String() != "approximate" {
		t.Fatal("class names wrong")
	}
}

// The nearest-neighbor specification of Portal code 1:
// FORALL over query, ARGMIN over reference with Euclidean kernel.
func TestNearestNeighborSpec(t *testing.T) {
	q, r := twoD()
	e := &PortalExpr{}
	e.AddLayer(FORALL, q, nil)
	e.AddLayer(ARGMIN, r, expr.NewDistanceKernel(geom.Euclidean))
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Classify() != PruneClass {
		t.Fatal("NN should classify as a pruning problem")
	}
	if e.Outer().Op != FORALL || e.Inner().Op != ARGMIN {
		t.Fatal("layer order wrong")
	}
	if e.Kernel() == nil {
		t.Fatal("kernel missing")
	}
	s := e.String()
	if !strings.Contains(s, "FORALL") || !strings.Contains(s, "ARGMIN") || !strings.Contains(s, "EUCLIDEAN") {
		t.Fatalf("String() = %q", s)
	}
}

// KDE: FORALL + SUM with Gaussian kernel → approximation problem.
func TestKDESpecClassifiesApprox(t *testing.T) {
	q, r := twoD()
	e := &PortalExpr{}
	e.AddLayer(FORALL, q, nil)
	e.AddLayer(SUM, r, expr.NewGaussianKernel(1))
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Classify() != ApproxClass {
		t.Fatal("KDE should classify as an approximation problem")
	}
}

// Range search: FORALL + UNIONARG with window indicator → pruning
// problem via the comparative kernel.
func TestRangeSearchSpecClassifiesPrune(t *testing.T) {
	q, r := twoD()
	e := &PortalExpr{}
	e.AddLayer(FORALL, q, nil)
	e.AddLayer(UNIONARG, r, expr.NewRangeKernel(0, 2))
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Classify() != PruneClass {
		t.Fatal("range search should classify as a pruning problem (comparative kernel)")
	}
}

// 2-point correlation: SUM + SUM with threshold kernel → pruning via
// comparative kernel (Table III).
func Test2PCSpec(t *testing.T) {
	q, r := twoD()
	e := &PortalExpr{}
	e.AddLayer(SUM, q, nil)
	e.AddLayer(SUM, r, expr.NewThresholdKernel(1.5))
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Classify() != PruneClass {
		t.Fatal("2PC has a comparative kernel → pruning problem")
	}
}

// Hausdorff: MAX + MIN → pruning problem via comparative operators.
func TestHausdorffSpec(t *testing.T) {
	q, r := twoD()
	e := &PortalExpr{}
	e.AddLayer(MAX, q, nil)
	e.AddLayer(MIN, r, expr.NewDistanceKernel(geom.Euclidean))
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Classify() != PruneClass {
		t.Fatal("Hausdorff should be a pruning problem")
	}
}

// UNION inner without comparative kernel degrades to exact base-case
// traversal but stays in the prune class (nothing approximated).
func TestUnionClassification(t *testing.T) {
	q, r := twoD()
	e := &PortalExpr{}
	e.AddLayer(FORALL, q, nil)
	e.AddLayer(UNION, r, expr.NewDistanceKernel(geom.Euclidean))
	if e.Classify() != PruneClass {
		t.Fatal("UNION should not be classified approximable")
	}
}

func TestValidateErrors(t *testing.T) {
	q, r := twoD()
	k := expr.NewDistanceKernel(geom.Euclidean)

	cases := []struct {
		name string
		e    *PortalExpr
		want error
	}{
		{"empty", &PortalExpr{}, ErrNoLayers},
		{"three layers", (&PortalExpr{}).AddLayer(FORALL, q, nil).AddLayer(FORALL, q, nil).AddLayer(SUM, r, k), ErrTooManyLayers},
		{"no kernel", (&PortalExpr{}).AddLayer(FORALL, q, nil).AddLayer(ARGMIN, r, nil), ErrNoKernel},
		{"missing k", (&PortalExpr{}).AddLayer(FORALL, q, nil).AddLayer(KARGMIN, r, k), ErrMissingK},
		{"nil data", (&PortalExpr{}).AddLayer(FORALL, nil, nil).AddLayer(ARGMIN, r, k), ErrNoData},
		{"inner forall", (&PortalExpr{}).AddLayer(FORALL, q, nil).AddLayer(FORALL, r, k), ErrInnerForall},
	}
	for _, c := range cases {
		if err := c.e.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}

	// Dim mismatch.
	q3 := storage.MustFromRows([][]float64{{1, 2, 3}})
	e := (&PortalExpr{}).AddLayer(FORALL, q3, nil).AddLayer(ARGMIN, r, k)
	if err := e.Validate(); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch: got %v", err)
	}

	// AddLayerK supplies k.
	e2 := (&PortalExpr{}).AddLayer(FORALL, q, nil)
	e2.AddLayerK(KARGMIN, 3, r, k)
	if err := e2.Validate(); err != nil {
		t.Errorf("AddLayerK should validate: %v", err)
	}
	if !strings.Contains(e2.String(), "KARGMIN(k=3)") {
		t.Errorf("String() should show k: %s", e2.String())
	}
}

// Kernel monotonicity validation (Section II property 2): the
// pre-defined kernels Portal ships are either monotone in distance or
// comparative.
func TestPredefinedKernelsSatisfySectionII(t *testing.T) {
	kernels := []*expr.Kernel{
		expr.NewDistanceKernel(geom.Euclidean),
		expr.NewDistanceKernel(geom.Manhattan),
		expr.NewDistanceKernel(geom.Chebyshev),
		expr.NewDistanceKernel(geom.SqEuclidean),
		expr.NewGaussianKernel(2),
		expr.NewPlummerKernel(0.01),
	}
	for _, k := range kernels {
		if k.IsComparative() {
			continue
		}
		dir := expr.MonotoneDirection(kernelBody(k))
		if dir == 0 {
			t.Errorf("kernel %s is not recognizably monotone", k)
		}
	}
}

// kernelBody exposes the effective body for the monotonicity check.
func kernelBody(k *expr.Kernel) expr.Expr {
	if k.Body == nil {
		return expr.D{}
	}
	return k.Body
}
