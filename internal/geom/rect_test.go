package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyRect(t *testing.T) {
	r := EmptyRect(3)
	if !r.IsEmpty() {
		t.Fatal("EmptyRect should report empty")
	}
	r.Expand([]float64{1, 2, 3})
	if r.IsEmpty() {
		t.Fatal("rect with a point should not be empty")
	}
	for i, want := range []float64{1, 2, 3} {
		if r.Min[i] != want || r.Max[i] != want {
			t.Fatalf("dim %d: got [%v,%v], want degenerate at %v", i, r.Min[i], r.Max[i], want)
		}
	}
}

func TestFromPointsContains(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 3}, {-1, 1}}
	r := FromPoints(2, pts)
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("rect %v should contain %v", r, p)
		}
	}
	if r.Contains([]float64{5, 5}) {
		t.Error("rect should not contain (5,5)")
	}
	if got := []float64{r.Min[0], r.Min[1], r.Max[0], r.Max[1]}; got[0] != -1 || got[1] != 0 || got[2] != 2 || got[3] != 3 {
		t.Errorf("bounds wrong: %v", got)
	}
}

func TestFromPointsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromPoints should panic on empty input")
		}
	}()
	FromPoints(2, nil)
}

func TestWidestDim(t *testing.T) {
	r := Rect{Min: []float64{0, 0, 0}, Max: []float64{1, 5, 2}}
	dim, w := r.WidestDim()
	if dim != 1 || w != 5 {
		t.Fatalf("got dim=%d w=%v, want dim=1 w=5", dim, w)
	}
	if r.Diameter() != 5 {
		t.Fatalf("Diameter = %v, want 5", r.Diameter())
	}
}

func TestCenter(t *testing.T) {
	r := Rect{Min: []float64{0, -2}, Max: []float64{4, 2}}
	c := r.Center(nil)
	if c[0] != 2 || c[1] != 0 {
		t.Fatalf("center = %v, want [2 0]", c)
	}
	// Reuse a destination slice.
	dst := make([]float64, 2)
	c2 := r.Center(dst)
	if &c2[0] != &dst[0] {
		t.Fatal("Center should reuse dst")
	}
}

func TestSplit(t *testing.T) {
	r := Rect{Min: []float64{0, 0}, Max: []float64{4, 4}}
	l, rt := r.Split(0, 1.5)
	if l.Max[0] != 1.5 || rt.Min[0] != 1.5 {
		t.Fatalf("split bounds wrong: %v | %v", l, rt)
	}
	if l.Min[1] != 0 || rt.Max[1] != 4 {
		t.Fatal("split should not touch other dims")
	}
}

func TestMinMaxDistPoint(t *testing.T) {
	r := Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}
	cases := []struct {
		p        []float64
		min, max float64
	}{
		{[]float64{0.5, 0.5}, 0, 0.5}, // inside: min 0, max to corner
		{[]float64{2, 0.5}, 1, 4.25},  // right of box
		{[]float64{-1, -1}, 2, 8},     // diagonal corner
	}
	for _, c := range cases {
		if got := r.MinDist2Point(c.p); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinDist2Point(%v) = %v, want %v", c.p, got, c.min)
		}
		if got := r.MaxDist2Point(c.p); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxDist2Point(%v) = %v, want %v", c.p, got, c.max)
		}
	}
}

func TestRectRectDist(t *testing.T) {
	a := Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}
	b := Rect{Min: []float64{3, 0}, Max: []float64{4, 1}}
	if got := a.MinDist2(b); math.Abs(got-4) > 1e-12 {
		t.Errorf("MinDist2 = %v, want 4", got)
	}
	if got := a.MaxDist2(b); math.Abs(got-17) > 1e-12 {
		t.Errorf("MaxDist2 = %v, want 17 (4^2+1^2)", got)
	}
	if got := a.MinDist1(b); math.Abs(got-2) > 1e-12 {
		t.Errorf("MinDist1 = %v, want 2", got)
	}
	if got := a.MaxDist1(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("MaxDist1 = %v, want 5", got)
	}
	if got := a.MinDistInf(b); math.Abs(got-2) > 1e-12 {
		t.Errorf("MinDistInf = %v, want 2", got)
	}
	if got := a.MaxDistInf(b); math.Abs(got-4) > 1e-12 {
		t.Errorf("MaxDistInf = %v, want 4", got)
	}
	// Overlapping rectangles have zero min distance in every metric.
	c := Rect{Min: []float64{0.5, 0.5}, Max: []float64{2, 2}}
	if a.MinDist2(c) != 0 || a.MinDist1(c) != 0 || a.MinDistInf(c) != 0 {
		t.Error("overlapping rects should have 0 min distance")
	}
	if !a.Intersects(c) || a.Intersects(b) {
		t.Error("Intersects wrong")
	}
}

func TestExpandRectContainsRect(t *testing.T) {
	a := FromPoints(2, [][]float64{{0, 0}, {1, 1}})
	b := FromPoints(2, [][]float64{{2, 2}, {3, 3}})
	u := a.Clone()
	u.ExpandRect(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Fatal("union should contain both inputs")
	}
	if a.ContainsRect(u) {
		t.Fatal("a should not contain the union")
	}
}

func TestDiagonal2(t *testing.T) {
	r := Rect{Min: []float64{0, 0, 0}, Max: []float64{1, 2, 2}}
	if got := r.Diagonal2(); math.Abs(got-9) > 1e-12 {
		t.Fatalf("Diagonal2 = %v, want 9", got)
	}
}

// randRectAndPoints generates a random rect and points, for property tests.
func randPoints(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64() * 10
		}
		pts[i] = p
	}
	return pts
}

// Property: for any two point sets, the metric bounds of their bounding
// rectangles bracket every pairwise distance. This is the soundness
// condition that makes prune/approximate decisions safe.
func TestBoundsBracketPairwiseDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	metrics := []Metric{Euclidean, SqEuclidean, Manhattan, Chebyshev}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		as := randPoints(r, 1+r.Intn(8), d)
		bs := randPoints(r, 1+r.Intn(8), d)
		ra := FromPoints(d, as)
		rb := FromPoints(d, bs)
		for _, m := range metrics {
			lo, hi := m.Bounds(ra, rb)
			for _, a := range as {
				for _, b := range bs {
					dist := m.Dist(a, b)
					if dist < lo-1e-9 || dist > hi+1e-9 {
						t.Logf("metric %v: dist %v outside [%v,%v]", m, dist, lo, hi)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MinDist2Point/MaxDist2Point bracket distances to all points
// inside the rectangle.
func TestPointBoundsBracket(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		pts := randPoints(r, 2+r.Intn(10), d)
		rect := FromPoints(d, pts)
		q := randPoints(r, 1, d)[0]
		lo, hi := rect.MinDist2Point(q), rect.MaxDist2Point(q)
		for _, p := range pts {
			d2 := SqDist(p, q)
			if d2 < lo-1e-9 || d2 > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMetricString(t *testing.T) {
	want := map[Metric]string{
		Euclidean: "EUCLIDEAN", SqEuclidean: "SQREUCDIST",
		Manhattan: "MANHATTAN", Chebyshev: "CHEBYSHEV",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if Metric(99).String() != "UNKNOWN" {
		t.Error("unknown metric should stringify to UNKNOWN")
	}
}

func TestRectString(t *testing.T) {
	r := Rect{Min: []float64{0, 1}, Max: []float64{2, 3}}
	if got := r.String(); got != "[0,2]x[1,3]" {
		t.Fatalf("String = %q", got)
	}
}

func TestMetricDistKnownValues(t *testing.T) {
	p := []float64{0, 0}
	q := []float64{3, 4}
	if got := Euclidean.Dist(p, q); math.Abs(got-5) > 1e-12 {
		t.Errorf("euclidean = %v", got)
	}
	if got := SqEuclidean.Dist(p, q); math.Abs(got-25) > 1e-12 {
		t.Errorf("sq euclidean = %v", got)
	}
	if got := Manhattan.Dist(p, q); math.Abs(got-7) > 1e-12 {
		t.Errorf("manhattan = %v", got)
	}
	if got := Chebyshev.Dist(p, q); math.Abs(got-4) > 1e-12 {
		t.Errorf("chebyshev = %v", got)
	}
}
