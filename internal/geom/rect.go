// Package geom provides the geometric primitives used by Portal's
// space-partitioning trees: hyper-rectangles (axis-aligned bounding
// boxes) and the node-to-node / point-to-node distance bounds that the
// multi-tree traversal evaluates instead of touching raw points.
//
// The paper (Section II-A) notes that "the bounding box information
// allows us to efficiently compute the center, minimum and maximum
// node-to-point and node-to-node distances during evaluation without
// accessing the actual points in each node, which is critical for
// performance". Everything in this package exists to serve that claim.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Rect is an axis-aligned hyper-rectangle in d dimensions. Min and Max
// always have equal length; Min[i] <= Max[i] holds for every valid Rect.
type Rect struct {
	Min []float64
	Max []float64
}

// NewRect returns a degenerate rectangle of dimension d positioned at
// the origin. Use Expand or FromPoints to grow it.
func NewRect(d int) Rect {
	return Rect{Min: make([]float64, d), Max: make([]float64, d)}
}

// EmptyRect returns a rectangle primed for accumulation: Min at +Inf
// and Max at -Inf so that the first Expand sets both bounds.
func EmptyRect(d int) Rect {
	r := Rect{Min: make([]float64, d), Max: make([]float64, d)}
	for i := 0; i < d; i++ {
		r.Min[i] = math.Inf(1)
		r.Max[i] = math.Inf(-1)
	}
	return r
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// IsEmpty reports whether the rectangle has accumulated no points yet
// (i.e. it is still in the EmptyRect state).
func (r Rect) IsEmpty() bool {
	return len(r.Min) == 0 || r.Min[0] > r.Max[0]
}

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	c := Rect{Min: make([]float64, len(r.Min)), Max: make([]float64, len(r.Max))}
	copy(c.Min, r.Min)
	copy(c.Max, r.Max)
	return c
}

// Expand grows r in place to include the point p.
func (r *Rect) Expand(p []float64) {
	for i, v := range p {
		if v < r.Min[i] {
			r.Min[i] = v
		}
		if v > r.Max[i] {
			r.Max[i] = v
		}
	}
}

// ExpandRect grows r in place to include the rectangle o.
func (r *Rect) ExpandRect(o Rect) {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] {
			r.Min[i] = o.Min[i]
		}
		if o.Max[i] > r.Max[i] {
			r.Max[i] = o.Max[i]
		}
	}
}

// FromPoints builds the tight bounding rectangle of the given points.
// Each point must have dimension d. FromPoints panics if pts is empty.
func FromPoints(d int, pts [][]float64) Rect {
	if len(pts) == 0 {
		panic("geom: FromPoints requires at least one point")
	}
	r := EmptyRect(d)
	for _, p := range pts {
		r.Expand(p)
	}
	return r
}

// Contains reports whether point p lies inside (or on the boundary of) r.
func (r Rect) Contains(p []float64) bool {
	for i, v := range p {
		if v < r.Min[i] || v > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Center writes the center point of r into dst and returns dst. If dst
// is nil a new slice is allocated.
func (r Rect) Center(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, r.Dim())
	}
	for i := range r.Min {
		dst[i] = 0.5 * (r.Min[i] + r.Max[i])
	}
	return dst
}

// WidestDim returns the index of the dimension with the largest extent
// and that extent. This is the split dimension used by the kd-tree's
// median-split strategy (paper Section V-B).
func (r Rect) WidestDim() (dim int, width float64) {
	dim, width = 0, r.Max[0]-r.Min[0]
	for i := 1; i < len(r.Min); i++ {
		if w := r.Max[i] - r.Min[i]; w > width {
			dim, width = i, w
		}
	}
	return dim, width
}

// Diameter returns the span of the widest dimension — the
// N^diameter quantity from Table III's approximation conditions.
func (r Rect) Diameter() float64 {
	_, w := r.WidestDim()
	return w
}

// Diagonal2 returns the squared length of the rectangle's main
// diagonal (the maximum squared distance between two of its points).
func (r Rect) Diagonal2() float64 {
	var s float64
	for i := range r.Min {
		w := r.Max[i] - r.Min[i]
		s += w * w
	}
	return s
}

// MinDist2Point returns the minimum squared Euclidean distance from
// point p to any point of r. Zero if p is inside r.
func (r Rect) MinDist2Point(p []float64) float64 {
	var s float64
	for i, v := range p {
		if v < r.Min[i] {
			d := r.Min[i] - v
			s += d * d
		} else if v > r.Max[i] {
			d := v - r.Max[i]
			s += d * d
		}
	}
	return s
}

// MaxDist2Point returns the maximum squared Euclidean distance from
// point p to any point of r (attained at a corner).
func (r Rect) MaxDist2Point(p []float64) float64 {
	var s float64
	for i, v := range p {
		lo := v - r.Min[i]
		hi := r.Max[i] - v
		d := math.Max(math.Abs(lo), math.Abs(hi))
		s += d * d
	}
	return s
}

// MinDist2 returns the minimum squared Euclidean distance between any
// point of r and any point of o. Zero if the rectangles intersect.
func (r Rect) MinDist2(o Rect) float64 {
	var s float64
	for i := range r.Min {
		if o.Max[i] < r.Min[i] {
			d := r.Min[i] - o.Max[i]
			s += d * d
		} else if o.Min[i] > r.Max[i] {
			d := o.Min[i] - r.Max[i]
			s += d * d
		}
	}
	return s
}

// MaxDist2 returns the maximum squared Euclidean distance between any
// point of r and any point of o.
func (r Rect) MaxDist2(o Rect) float64 {
	var s float64
	for i := range r.Min {
		a := math.Abs(r.Max[i] - o.Min[i])
		b := math.Abs(o.Max[i] - r.Min[i])
		d := math.Max(a, b)
		s += d * d
	}
	return s
}

// MinDist1 returns the minimum Manhattan (L1) distance between r and o.
func (r Rect) MinDist1(o Rect) float64 {
	var s float64
	for i := range r.Min {
		if o.Max[i] < r.Min[i] {
			s += r.Min[i] - o.Max[i]
		} else if o.Min[i] > r.Max[i] {
			s += o.Min[i] - r.Max[i]
		}
	}
	return s
}

// MaxDist1 returns the maximum Manhattan (L1) distance between r and o.
func (r Rect) MaxDist1(o Rect) float64 {
	var s float64
	for i := range r.Min {
		a := math.Abs(r.Max[i] - o.Min[i])
		b := math.Abs(o.Max[i] - r.Min[i])
		s += math.Max(a, b)
	}
	return s
}

// MinDistInf returns the minimum Chebyshev (L∞) distance between r and o.
func (r Rect) MinDistInf(o Rect) float64 {
	var m float64
	for i := range r.Min {
		var d float64
		if o.Max[i] < r.Min[i] {
			d = r.Min[i] - o.Max[i]
		} else if o.Min[i] > r.Max[i] {
			d = o.Min[i] - r.Max[i]
		}
		if d > m {
			m = d
		}
	}
	return m
}

// MaxDistInf returns the maximum Chebyshev (L∞) distance between r and o.
func (r Rect) MaxDistInf(o Rect) float64 {
	var m float64
	for i := range r.Min {
		a := math.Abs(r.Max[i] - o.Min[i])
		b := math.Abs(o.Max[i] - r.Min[i])
		d := math.Max(a, b)
		if d > m {
			m = d
		}
	}
	return m
}

// Split returns the two halves of r cut at value v along dimension dim.
// The left half keeps points with coordinate <= v.
func (r Rect) Split(dim int, v float64) (left, right Rect) {
	left = r.Clone()
	right = r.Clone()
	left.Max[dim] = v
	right.Min[dim] = v
	return left, right
}

// Intersects reports whether r and o share at least one point.
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if o.Max[i] < r.Min[i] || o.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// String renders the rectangle as [min0,max0]x[min1,max1]x... for
// debugging and traversal traces.
func (r Rect) String() string {
	var b strings.Builder
	for i := range r.Min {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%.4g,%.4g]", r.Min[i], r.Max[i])
	}
	return b.String()
}
