package geom

import "math"

// Metric identifies one of Portal's pre-defined point-to-point distance
// metrics (paper Section III-C, Portal code 2). The Mahalanobis metric
// is parameterized by a covariance matrix and lives in internal/linalg;
// here we cover the purely geometric metrics.
type Metric int

const (
	// Euclidean is the L2 distance sqrt(sum (q_i-r_i)^2).
	Euclidean Metric = iota
	// SqEuclidean is the squared L2 distance (PortalFunc::SQREUCDIST).
	SqEuclidean
	// Manhattan is the L1 distance sum |q_i-r_i|.
	Manhattan
	// Chebyshev is the L∞ distance max |q_i-r_i|.
	Chebyshev
)

// String returns the Portal name of the metric.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "EUCLIDEAN"
	case SqEuclidean:
		return "SQREUCDIST"
	case Manhattan:
		return "MANHATTAN"
	case Chebyshev:
		return "CHEBYSHEV"
	default:
		return "UNKNOWN"
	}
}

// Dist computes the metric distance between points p and q of equal
// dimension.
func (m Metric) Dist(p, q []float64) float64 {
	switch m {
	case Euclidean:
		return math.Sqrt(SqDist(p, q))
	case SqEuclidean:
		return SqDist(p, q)
	case Manhattan:
		var s float64
		for i := range p {
			s += math.Abs(p[i] - q[i])
		}
		return s
	case Chebyshev:
		var s float64
		for i := range p {
			if d := math.Abs(p[i] - q[i]); d > s {
				s = d
			}
		}
		return s
	default:
		panic("geom: unknown metric")
	}
}

// Bounds returns the minimum and maximum metric distance between any
// point of a and any point of b. These are the quantities evaluated by
// the prune/approximate conditions of Table III.
func (m Metric) Bounds(a, b Rect) (min, max float64) {
	switch m {
	case Euclidean:
		return math.Sqrt(a.MinDist2(b)), math.Sqrt(a.MaxDist2(b))
	case SqEuclidean:
		return a.MinDist2(b), a.MaxDist2(b)
	case Manhattan:
		return a.MinDist1(b), a.MaxDist1(b)
	case Chebyshev:
		return a.MinDistInf(b), a.MaxDistInf(b)
	default:
		panic("geom: unknown metric")
	}
}

// SqDist returns the squared Euclidean distance between p and q.
func SqDist(p, q []float64) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between p and q.
func Dist(p, q []float64) float64 { return math.Sqrt(SqDist(p, q)) }
