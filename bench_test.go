package portal

// Benchmark harness: one benchmark family per evaluation artifact of
// the paper (run `go test -bench=. -benchmem`):
//
//	BenchmarkTable4*   — Portal vs expert per problem (Table IV cells)
//	BenchmarkTable5*   — Portal vs library-style baselines (Table V)
//	BenchmarkAblation* — the design-choice ablations DESIGN.md indexes:
//	                     strength reduction, data layout, dual- vs
//	                     single-tree, specialized loops vs the IR
//	                     interpreter, sequential vs parallel traversal.
//
// cmd/portalbench regenerates the full tables with scaling knobs; the
// benchmarks here pin each comparison at a fixed laptop-scale size so
// `go test -bench` output is directly comparable run to run.

import (
	"testing"

	"portal/internal/baselines/expert"
	"portal/internal/baselines/extlib"
	"portal/internal/baselines/fdpslike"
	"portal/internal/codegen"
	"portal/internal/dataset"
	"portal/internal/engine"
	"portal/internal/expr"
	"portal/internal/geom"
	"portal/internal/lang"
	"portal/internal/problems"
	"portal/internal/storage"
	"portal/internal/tree"
)

const benchN = 4000

func benchData(name string) *storage.Storage {
	return dataset.MustGenerate(name, benchN, 1)
}

var benchCfg = problems.Config{
	LeafSize: 32,
	Codegen:  codegen.Options{NoStats: true},
}

var benchExpert = expert.Options{LeafSize: 32}

// ---- Table IV: Portal vs expert ----

func BenchmarkTable4KNNPortal(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := problems.KNN(data, data, 5, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4KNNExpert(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expert.KNN(data, data, 5, benchExpert)
	}
}

func BenchmarkTable4KDEPortal(b *testing.B) {
	data := benchData("IHEPC")
	sigma := problems.SilvermanBandwidth(data)
	cfg := benchCfg
	cfg.Tau = 1e-3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problems.KDE(data, data, sigma, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4KDEExpert(b *testing.B) {
	data := benchData("IHEPC")
	sigma := problems.SilvermanBandwidth(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expert.KDE(data, data, sigma, 1e-3, benchExpert)
	}
}

func BenchmarkTable4RSPortal(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problems.RangeSearch(data, data, 0, 1.0, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4RSExpert(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expert.RangeSearch(data, data, 0, 1.0, benchExpert)
	}
}

func BenchmarkTable4MSTPortal(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := problems.MST(data, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4MSTExpert(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expert.MST(data, benchExpert)
	}
}

func BenchmarkTable4EMPortal(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problems.EMFit(data, problems.EMConfig{K: 3, MaxIters: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4EMExpert(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expert.EM(data, expert.EMOptions{K: 3, MaxIters: 3, Seed: 1, Options: benchExpert}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4HDPortal(b *testing.B) {
	a := benchData("IHEPC")
	c := dataset.MustGenerate("IHEPC", benchN, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problems.Hausdorff(a, c, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4HDExpert(b *testing.B) {
	a := benchData("IHEPC")
	c := dataset.MustGenerate("IHEPC", benchN, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expert.Hausdorff(a, c, benchExpert)
	}
}

// ---- Table V: Portal vs libraries ----

func BenchmarkTable5TwoPointPortal(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problems.TwoPointCorrelation(data, 1.0, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5TwoPointSKLearnLike(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extlib.SKLearnTwoPoint(data, 1.0, 32)
	}
}

func nbcFixtures(b *testing.B) (*storage.Storage, []int) {
	b.Helper()
	data := benchData("HIGGS")
	labels := make([]int, data.Len())
	for i := range labels {
		if data.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	return data, labels
}

func BenchmarkTable5NBCPortal(b *testing.B) {
	data, labels := nbcFixtures(b)
	model, err := problems.NBCTrain(data, labels, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Classify(data, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5NBCMLPackLike(b *testing.B) {
	data, labels := nbcFixtures(b)
	model, err := extlib.MLPackNBCTrain(data, labels, 1e-3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Classify(data)
	}
}

func BenchmarkTable5BarnesHutPortal(b *testing.B) {
	pos := dataset.GenerateElliptical(benchN, 1)
	mass := dataset.EllipticalMasses(benchN)
	cfg := problems.BHConfig{Theta: 0.5, Eps: 0.05, LeafSize: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problems.BarnesHut(pos, mass, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5BarnesHutFDPSLike(b *testing.B) {
	pos := dataset.GenerateElliptical(benchN, 1)
	mass := dataset.EllipticalMasses(benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fdpslike.BarnesHut(pos, mass, fdpslike.Options{Theta: 0.5, Eps: 0.05, LeafSize: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations ----

func nnBenchSpec(data *storage.Storage) *lang.PortalExpr {
	return (&lang.PortalExpr{}).
		AddLayer(lang.FORALL, data, nil).
		AddLayer(lang.ARGMIN, data, expr.NewDistanceKernel(geom.Euclidean))
}

// Strength reduction on/off (Section IV-E).
func BenchmarkAblationStrengthReductionOn(b *testing.B) {
	data := benchData("IHEPC")
	sigma := problems.SilvermanBandwidth(data)
	cfg := benchCfg
	cfg.Tau = 1e-3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problems.KDE(data, data, sigma, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStrengthReductionOff(b *testing.B) {
	data := benchData("IHEPC")
	sigma := problems.SilvermanBandwidth(data)
	cfg := benchCfg
	cfg.Tau = 1e-3
	cfg.Codegen.ExactMath = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problems.KDE(data, data, sigma, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Data layout (Section IV-F): the same 3-d NN with the automatic
// column-major layout versus a forced row-major layout.
func layoutBench(b *testing.B, layout storage.Layout) {
	src := dataset.GenerateElliptical(benchN, 1)
	data := src.Convert(layout)
	spec := nnBenchSpec(data)
	cfg := engine.Config{LeafSize: 32, Codegen: codegen.Options{NoStats: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run("nn", spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLayoutColMajor(b *testing.B) { layoutBench(b, storage.ColMajor) }
func BenchmarkAblationLayoutRowMajor(b *testing.B) { layoutBench(b, storage.RowMajor) }

// Dual-tree vs single-tree (the algorithmic core of Table V's gaps).
func BenchmarkAblationDualTreeKNN(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := problems.KNN(data, data, 5, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSingleTreeKNN(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extlib.SKLearnKNN(data, data, 5, 32)
	}
}

// Specialized base cases vs the generic IR interpreter (the backend's
// reason to exist).
func BenchmarkAblationSpecializedBaseCase(b *testing.B) {
	data := dataset.MustGenerate("IHEPC", 1500, 1)
	spec := nnBenchSpec(data)
	cfg := engine.Config{LeafSize: 32, Codegen: codegen.Options{NoStats: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run("nn", spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInterpretedBaseCase(b *testing.B) {
	data := dataset.MustGenerate("IHEPC", 1500, 1)
	spec := nnBenchSpec(data)
	cfg := engine.Config{LeafSize: 32, Codegen: codegen.Options{NoStats: true, ForceInterp: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run("nn", spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Sequential vs parallel traversal (Section IV-F; speedup requires
// multiple cores).
func BenchmarkAblationTraversalSequential(b *testing.B) {
	data := benchData("IHEPC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := problems.KNN(data, data, 5, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTraversalParallel(b *testing.B) {
	data := benchData("IHEPC")
	cfg := benchCfg
	cfg.Parallel = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := problems.KNN(data, data, 5, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Tree construction cost (amortized in every Table IV/V cell).
func BenchmarkTreeBuildKD(b *testing.B) {
	data := benchData("HIGGS")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.BuildKD(data, &tree.Options{LeafSize: 32})
	}
}

func BenchmarkTreeBuildOct(b *testing.B) {
	pos := dataset.GenerateElliptical(benchN, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.BuildOct(pos, &tree.Options{LeafSize: 32})
	}
}
