// Package nbody exposes Portal's ready-made N-body problem solvers —
// the nine problems of the paper's Table III — behind a stable public
// API. Each solver compiles the problem through the full Portal
// pipeline (or, for the iterative/vector problems, drives the
// multi-tree traversal directly) and returns results in the input's
// original ordering.
//
// For problems not covered here, compose your own operator/kernel
// chain with the root portal package.
package nbody

import (
	"portal/internal/problems"
	"portal/internal/storage"
)

// Storage is the dataset container shared with the portal root
// package.
type Storage = storage.Storage

// Config tunes tree construction, parallelism, and approximation.
type Config = problems.Config

// MSTEdge is one edge of a Euclidean minimum spanning tree.
type MSTEdge = problems.MSTEdge

// BHConfig configures Barnes-Hut force evaluation.
type BHConfig = problems.BHConfig

// EMConfig configures Gaussian-mixture fitting.
type EMConfig = problems.EMConfig

// EMModel is a fitted Gaussian mixture.
type EMModel = problems.EMModel

// NBCModel is a trained Gaussian naive-Bayes-style classifier.
type NBCModel = problems.NBCModel

// KNN returns, for every query point, the indices and distances of its
// k nearest reference points (∀, argmin^k with the Euclidean kernel).
func KNN(query, ref *Storage, k int, cfg Config) (indices [][]int, dists [][]float64, err error) {
	return problems.KNN(query, ref, k, cfg)
}

// RangeSearch returns, for every query point, the reference indices at
// distance in (lo, hi) — the ∀/∪arg window query.
func RangeSearch(query, ref *Storage, lo, hi float64, cfg Config) ([][]int, error) {
	return problems.RangeSearch(query, ref, lo, hi, cfg)
}

// Hausdorff computes the directed Hausdorff distance
// max_{a∈A} min_{b∈B} ‖a−b‖.
func Hausdorff(a, b *Storage, cfg Config) (float64, error) {
	return problems.Hausdorff(a, b, cfg)
}

// HausdorffSymmetric computes max(h(A,B), h(B,A)).
func HausdorffSymmetric(a, b *Storage, cfg Config) (float64, error) {
	return problems.HausdorffSymmetric(a, b, cfg)
}

// KDE evaluates the (unnormalized) Gaussian kernel density of the
// reference set at every query point; cfg.Tau is the paper's
// time/accuracy knob.
func KDE(query, ref *Storage, sigma float64, cfg Config) ([]float64, error) {
	return problems.KDE(query, ref, sigma, cfg)
}

// SilvermanBandwidth returns the rule-of-thumb KDE bandwidth.
func SilvermanBandwidth(s *Storage) float64 { return problems.SilvermanBandwidth(s) }

// TwoPointCorrelation counts ordered pairs within the radius.
func TwoPointCorrelation(data *Storage, radius float64, cfg Config) (float64, error) {
	return problems.TwoPointCorrelation(data, radius, cfg)
}

// ThreePointCorrelation counts ordered triples whose three pairwise
// distances all lie within the radius (the m=3 multi-tree traversal).
func ThreePointCorrelation(data *Storage, radius float64, cfg Config) (float64, error) {
	return problems.ThreePointCorrelation(data, radius, cfg)
}

// MST computes the Euclidean minimum spanning tree by iterative
// dual-tree Borůvka, returning edges sorted by weight and the total.
func MST(data *Storage, cfg Config) ([]MSTEdge, float64, error) {
	return problems.MST(data, cfg)
}

// EMFit fits a K-component Gaussian mixture (E-step + log-likelihood
// through the Cholesky-optimized Mahalanobis distance).
func EMFit(data *Storage, cfg EMConfig) (*EMModel, error) {
	return problems.EMFit(data, cfg)
}

// NBCTrain fits a full-covariance Gaussian classifier from labeled
// data.
func NBCTrain(train *Storage, labels []int, ridge float64) (*NBCModel, error) {
	return problems.NBCTrain(train, labels, ridge)
}

// BarnesHut computes per-particle gravitational accelerations on an
// octree with the dual-tree multipole acceptance criterion. pos must
// be 3-dimensional; nil mass means unit masses.
func BarnesHut(pos *Storage, mass []float64, cfg BHConfig) ([][]float64, error) {
	return problems.BarnesHut(pos, mass, cfg)
}
