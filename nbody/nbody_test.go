package nbody_test

import (
	"math"
	"math/rand"
	"testing"

	"portal"
	"portal/nbody"
)

func randStorage(rng *rand.Rand, n, d int) *nbody.Storage {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 3
		}
	}
	return portal.MustNewStorage(rows)
}

// The public nbody facade must route to working implementations for
// every Table III problem.
func TestPublicFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randStorage(rng, 400, 3)
	cfg := nbody.Config{LeafSize: 16}

	idx, dists, err := nbody.KNN(data, data, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 400 || len(dists[0]) != 3 {
		t.Fatal("knn shape wrong")
	}
	if idx[0][0] != 0 || dists[0][0] != 0 {
		t.Fatal("self should be the nearest neighbor at distance 0")
	}

	lists, err := nbody.RangeSearch(data, data, 0.5, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != 400 {
		t.Fatal("range search shape wrong")
	}

	h, err := nbody.Hausdorff(data, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("h(A,A) = %v", h)
	}
	hs, err := nbody.HausdorffSymmetric(data, randStorage(rng, 300, 3), cfg)
	if err != nil || hs <= 0 {
		t.Fatalf("symmetric hausdorff %v %v", hs, err)
	}

	sigma := nbody.SilvermanBandwidth(data)
	kcfg := cfg
	kcfg.Tau = 1e-6
	dens, err := nbody.KDE(data, data, sigma, kcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dens {
		if v < 1 { // self-contribution alone is 1
			t.Fatalf("density %v below self-contribution", v)
		}
	}

	c2, err := nbody.TwoPointCorrelation(data, 1.0, cfg)
	if err != nil || c2 < 400 {
		t.Fatalf("2PC %v %v (must count self-pairs)", c2, err)
	}
	c3, err := nbody.ThreePointCorrelation(data, 1.0, cfg)
	if err != nil || c3 < 400 {
		t.Fatalf("3PC %v %v", c3, err)
	}

	edges, total, err := nbody.MST(data, cfg)
	if err != nil || len(edges) != 399 || total <= 0 {
		t.Fatalf("MST %d edges total %v err %v", len(edges), total, err)
	}

	em, err := nbody.EMFit(data, nbody.EMConfig{K: 2, MaxIters: 5, Seed: 1})
	if err != nil || len(em.LogLik) == 0 {
		t.Fatalf("EM %v", err)
	}

	labels := make([]int, data.Len())
	for i := range labels {
		if data.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	model, err := nbody.NBCTrain(data, labels, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := model.Classify(data, cfg)
	if err != nil || len(got) != 400 {
		t.Fatalf("NBC %v", err)
	}

	pos := randStorage(rng, 300, 3)
	acc, err := nbody.BarnesHut(pos, nil, nbody.BHConfig{Theta: 0.5, Eps: 0.1, LeafSize: 16})
	if err != nil || len(acc) != 300 {
		t.Fatalf("BH %v", err)
	}
	for _, a := range acc {
		for _, v := range a {
			if math.IsNaN(v) {
				t.Fatal("NaN acceleration")
			}
		}
	}
}
