// MST example: Euclidean minimum spanning tree via iterative dual-tree
// Borůvka (the paper's Table III MST row — a Portal argmin layer driven
// by native iterative logic), used here for single-linkage clustering:
// cutting the longest MST edges splits the data into clusters.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"portal/internal/problems"
	"portal/internal/storage"
)

func main() {
	// Three well-separated Gaussian blobs.
	rng := rand.New(rand.NewSource(9))
	centers := [][]float64{{0, 0}, {20, 0}, {0, 20}}
	var rows [][]float64
	for _, c := range centers {
		for i := 0; i < 2000; i++ {
			rows = append(rows, []float64{
				c[0] + rng.NormFloat64(),
				c[1] + rng.NormFloat64(),
			})
		}
	}
	data := storage.MustFromRows(rows)

	edges, total, err := problems.MST(data, problems.Config{LeafSize: 32, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MST over %d points: %d edges, total weight %.2f\n",
		data.Len(), len(edges), total)

	// Single-linkage: removing the k-1 heaviest edges yields k clusters.
	k := 3
	sort.Slice(edges, func(i, j int) bool { return edges[i].Weight > edges[j].Weight })
	fmt.Printf("heaviest edges (cluster separators): %.2f, %.2f\n",
		edges[0].Weight, edges[1].Weight)
	kept := edges[k-1:]

	parent := make([]int, data.Len())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range kept {
		parent[find(e.A)] = find(e.B)
	}
	sizes := map[int]int{}
	for i := range parent {
		sizes[find(i)]++
	}
	fmt.Printf("single-linkage clusters (expected 3 x 2000): ")
	var counts []int
	for _, s := range sizes {
		counts = append(counts, s)
	}
	sort.Ints(counts)
	fmt.Println(counts)
}
