// Quickstart: the nearest-neighbor program of the paper's code 1,
// written against Portal's public API. The problem definition itself
// is the same handful of lines the paper counts in Table IV.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"portal"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	randRows := func(n int) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		return rows
	}

	// Portal code 1, in Go.
	query := portal.MustNewStorage(randRows(1000))
	reference := portal.MustNewStorage(randRows(5000))
	expr := portal.NewExpr()
	expr.AddLayer(portal.FORALL, query, nil)
	expr.AddLayer(portal.ARGMIN, reference, portal.Euclidean())
	out, err := expr.Execute()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("nearest neighbors of the first five query points:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  query %d -> reference %d (distance %.4f)\n",
			i, out.Args[i], out.Values[i])
	}
	fmt.Printf("traversal: %d base cases, %d prunes (of %d node pairs)\n",
		out.Stats.BaseCases, out.Stats.Prunes,
		out.Stats.BaseCases+out.Stats.Prunes+out.Stats.Visits)

	// The generated brute-force oracle (used by Portal for correctness
	// checks) agrees.
	brute, err := expr.BruteForce()
	if err != nil {
		log.Fatal(err)
	}
	for i := range out.Args {
		if out.Args[i] != brute.Args[i] {
			log.Fatalf("mismatch at %d", i)
		}
	}
	fmt.Println("verified against the brute-force O(N^2) oracle")
}
