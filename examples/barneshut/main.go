// Barnes-Hut example: a short leapfrog N-body integration of the
// Elliptical particle cloud (paper Section V-A), using the dual-tree
// Barnes-Hut force computation with the θ accuracy knob, and a
// comparison against the FDPS-style single-tree baseline.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"portal/internal/baselines/fdpslike"
	"portal/internal/dataset"
	"portal/internal/problems"
	"portal/internal/storage"
)

func main() {
	const n = 20000
	pos := dataset.GenerateElliptical(n, 3)
	mass := dataset.EllipticalMasses(n)
	cfg := problems.BHConfig{Theta: 0.5, Eps: 0.05, LeafSize: 32, Parallel: true}

	// One force evaluation, dual-tree vs single-tree.
	t0 := time.Now()
	acc, err := problems.BarnesHut(pos, mass, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dualTime := time.Since(t0)

	t0 = time.Now()
	_, err = fdpslike.BarnesHut(pos, mass, fdpslike.Options{
		Theta: 0.5, Eps: 0.05, LeafSize: 32, Parallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	singleTime := time.Since(t0)
	fmt.Printf("force evaluation on %d particles: dual-tree %v, fdps-like single-tree %v (%.2fx)\n",
		n, dualTime, singleTime, singleTime.Seconds()/dualTime.Seconds())

	// Three leapfrog steps; report total momentum drift as a sanity
	// check (softened forces are not exactly symmetric under the MAC,
	// so drift stays small but non-zero).
	dt := 1e-3
	vel := make([][]float64, n)
	for i := range vel {
		vel[i] = make([]float64, 3)
	}
	cur := pos
	for step := 0; step < 3; step++ {
		for i := 0; i < n; i++ {
			for c := 0; c < 3; c++ {
				vel[i][c] += acc[i][c] * dt
			}
		}
		rows := make([][]float64, n)
		buf := make([]float64, 3)
		for i := 0; i < n; i++ {
			cur.Point(i, buf)
			rows[i] = []float64{
				buf[0] + vel[i][0]*dt,
				buf[1] + vel[i][1]*dt,
				buf[2] + vel[i][2]*dt,
			}
		}
		cur = storage.MustFromRows(rows)
		if acc, err = problems.BarnesHut(cur, mass, cfg); err != nil {
			log.Fatal(err)
		}
		var px, py, pz float64
		for i := 0; i < n; i++ {
			px += mass[i] * vel[i][0]
			py += mass[i] * vel[i][1]
			pz += mass[i] * vel[i][2]
		}
		fmt.Printf("step %d: |momentum| = %.3e\n", step+1,
			math.Sqrt(px*px+py*py+pz*pz))
	}
}
