// KDE example: Gaussian kernel density estimation over a synthetic
// IHEPC-like dataset, demonstrating the approximation problem class
// and the τ time/accuracy knob the paper exposes (Section II-B).
package main

import (
	"fmt"
	"log"
	"time"

	"portal"
	"portal/internal/dataset"
	"portal/internal/problems"
)

func main() {
	data := dataset.MustGenerate("IHEPC", 20000, 7)
	sigma := problems.SilvermanBandwidth(data)
	fmt.Printf("dataset: %d x %d, Silverman bandwidth %.4f\n",
		data.Len(), data.Dim(), sigma)

	// Sweep the approximation threshold: looser τ → faster, bounded
	// error. This is the tuning knob of Section II-B.
	var exact []float64
	for _, tau := range []float64{1e-8, 1e-5, 1e-3, 1e-1} {
		expr := portal.NewExpr()
		expr.AddLayer(portal.FORALL, data, nil)
		expr.AddLayer(portal.SUM, data, portal.Gaussian(sigma))
		expr.Configure(portal.Config{Tau: tau, LeafSize: 32, Parallel: true})
		t0 := time.Now()
		out, err := expr.Execute()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		if exact == nil {
			exact = out.Values
			fmt.Printf("tau=%-8g time=%-12v (reference run)\n", tau, elapsed)
			continue
		}
		var maxErr float64
		for i := range exact {
			if e := abs(out.Values[i] - exact[i]); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("tau=%-8g time=%-12v approxes=%-8d max abs err=%.3g (bound %.3g)\n",
			tau, elapsed, out.Stats.Approxes, maxErr, tau*float64(data.Len()))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
