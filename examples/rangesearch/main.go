// Range-search example: the ∀/∪arg window query of Table III, written
// with a user-defined kernel (paper code 3) instead of the pre-defined
// PortalFunc::RANGE, and cross-checked against it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"portal"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	rows := make([][]float64, 5000)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	data := portal.MustNewStorage(rows)

	// Pre-defined window kernel.
	e1 := portal.NewExpr()
	e1.AddLayer(portal.FORALL, data, nil)
	e1.AddLayer(portal.UNIONARG, data, portal.Range(0.5, 1.5))
	out1, err := e1.Execute()
	if err != nil {
		log.Fatal(err)
	}

	// The same window via the Var/Expr front end: the kernel is the
	// Euclidean distance sqrt(pow(q-r, 2)); the window sits in the
	// pre-defined Range kernel, so here we only demonstrate that a
	// user-normalized kernel drives the same machinery.
	q := portal.NewVar("q")
	r := portal.NewVar("r")
	userEuclid, err := portal.UserKernel(portal.SqrtV(portal.PowV(portal.SubV(q, r), 2)))
	if err != nil {
		log.Fatal(err)
	}
	e2 := portal.NewExpr()
	e2.AddLayer(portal.FORALL, data, nil)
	e2.AddLayer(portal.MIN, data, userEuclid)
	out2, err := e2.Execute()
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, l := range out1.ArgLists {
		total += len(l)
	}
	fmt.Printf("window (0.5, 1.5): %d matches across %d queries (avg %.1f)\n",
		total, data.Len(), float64(total)/float64(data.Len()))
	fmt.Printf("nearest-neighbor distance of point 0 (self included): %.4f\n",
		out2.Values[0])
	fmt.Printf("traversal stats: %d prunes, %d bulk inclusions, %d base cases\n",
		out1.Stats.Prunes, out1.Stats.Approxes, out1.Stats.BaseCases)
}
