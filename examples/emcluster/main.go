// EM clustering example: fit a Gaussian mixture with EM (the paper's
// iterative two-sub-problem N-body computation: E-step +
// log-likelihood), then reuse the fitted components as a Bayes
// classifier and compare against training a naive Bayes model on the
// recovered hard labels.
package main

import (
	"fmt"
	"log"

	"portal"
	"portal/internal/dataset"
	"portal/nbody"
)

func main() {
	// Three separable blobs with known membership; the tail of the
	// same draw serves as held-out data from the same mixture.
	all, allLabels := dataset.GenerateBlobs(8000, 4, 3, 21)
	rows := all.Rows()
	data := portalStorage(rows[:6000])
	trueLabels := allLabels[:6000]
	fresh := portalStorage(rows[6000:])
	freshLabels := allLabels[6000:]

	model, err := nbody.EMFit(data, nbody.EMConfig{K: 3, MaxIters: 30, Tol: 1e-6, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EM converged in %d iterations; log-likelihood %.1f -> %.1f\n",
		len(model.LogLik), model.LogLik[0], model.LogLik[len(model.LogLik)-1])

	// Hard assignments from the responsibilities.
	resp := model.Responsibilities(data)
	hard := make([]int, data.Len())
	for i := range hard {
		best, arg := -1.0, 0
		for k := range resp {
			if resp[k][i] > best {
				best, arg = resp[k][i], k
			}
		}
		hard[i] = arg
	}
	// Cluster purity against the generating labels (components are
	// permuted, so score the best per-cluster majority).
	purity := clusterPurity(hard, trueLabels, 3)
	fmt.Printf("EM cluster purity vs generating labels: %.3f\n", purity)

	// Train NBC on the EM-recovered labels and classify fresh points.
	nbc, err := nbody.NBCTrain(data, hard, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := nbc.Classify(fresh, nbody.Config{LeafSize: 32, Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NBC purity on fresh data: %.3f\n", clusterPurity(pred, freshLabels, 3))
}

func portalStorage(rows [][]float64) *nbody.Storage {
	s, err := portal.NewStorage(rows)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// clusterPurity maps each predicted cluster to its majority true label
// and scores the fraction matched.
func clusterPurity(pred, truth []int, k int) float64 {
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	for i := range pred {
		counts[pred[i]][truth[i]]++
	}
	correct := 0
	for c := 0; c < k; c++ {
		best := 0
		for t := 0; t < k; t++ {
			if counts[c][t] > best {
				best = counts[c][t]
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}
