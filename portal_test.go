package portal

import (
	"math"
	"testing"
)

func TestQuickstartNearestNeighbor(t *testing.T) {
	query := MustNewStorage([][]float64{{0, 0}, {5, 5}})
	ref := MustNewStorage([][]float64{{0.2, 0}, {4.9, 5.1}, {100, 100}})
	e := NewExpr()
	e.AddLayer(FORALL, query, nil)
	e.AddLayer(ARGMIN, ref, Euclidean())
	out, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if out.Args[0] != 0 || out.Args[1] != 1 {
		t.Fatalf("args = %v", out.Args)
	}
	if e.Output() != out {
		t.Fatal("Output() should return last result")
	}
	brute, err := e.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if brute.Args[0] != out.Args[0] || brute.Args[1] != out.Args[1] {
		t.Fatal("brute force disagrees")
	}
}

func TestUserDefinedKernel(t *testing.T) {
	// Portal code 3: Expr EuclidDist = sqrt(pow((q-r),2)).
	q := NewVar("q")
	r := NewVar("r")
	k, err := UserKernel(SqrtV(PowV(SubV(q, r), 2)))
	if err != nil {
		t.Fatal(err)
	}
	query := MustNewStorage([][]float64{{0, 0}})
	ref := MustNewStorage([][]float64{{3, 4}})
	e := NewExpr().AddLayer(FORALL, query, nil).AddLayer(MIN, ref, k)
	out, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Values[0]-5) > 1e-4 {
		t.Fatalf("min distance %v, want 5", out.Values[0])
	}
}

func TestKDEViaPublicAPI(t *testing.T) {
	ref := MustNewStorage([][]float64{{0}, {0.1}, {-0.1}, {10}})
	query := MustNewStorage([][]float64{{0}, {10}, {5}})
	e := NewExpr()
	e.AddLayer(FORALL, query, nil)
	e.AddLayer(SUM, ref, Gaussian(0.5))
	e.Configure(Config{Tau: 1e-9, LeafSize: 2})
	out, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !(out.Values[0] > out.Values[1] && out.Values[1] > out.Values[2]) {
		t.Fatalf("density ordering wrong: %v", out.Values)
	}
}

func TestValidateViaPublicAPI(t *testing.T) {
	if err := NewExpr().Validate(); err == nil {
		t.Fatal("empty expr should not validate")
	}
}

func TestKNNViaPublicAPI(t *testing.T) {
	query := MustNewStorage([][]float64{{0, 0}})
	ref := MustNewStorage([][]float64{{1, 0}, {2, 0}, {3, 0}, {4, 0}})
	e := NewExpr()
	e.AddLayer(FORALL, query, nil)
	e.AddLayerK(KARGMIN, 2, ref, Euclidean())
	out, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ArgLists[0]) != 2 || out.ArgLists[0][0] != 0 || out.ArgLists[0][1] != 1 {
		t.Fatalf("2-NN = %v", out.ArgLists[0])
	}
}

func TestPredefinedKernels(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if v := Euclidean().Eval(a, b); math.Abs(v-5) > 1e-12 {
		t.Errorf("euclidean %v", v)
	}
	if v := SqEuclidean().Eval(a, b); math.Abs(v-25) > 1e-12 {
		t.Errorf("sqeuclidean %v", v)
	}
	if v := Manhattan().Eval(a, b); math.Abs(v-7) > 1e-12 {
		t.Errorf("manhattan %v", v)
	}
	if v := Chebyshev().Eval(a, b); math.Abs(v-4) > 1e-12 {
		t.Errorf("chebyshev %v", v)
	}
	if v := Threshold(6).Eval(a, b); v != 1 {
		t.Errorf("threshold %v", v)
	}
	if v := Range(6, 7).Eval(a, b); v != 0 {
		t.Errorf("range %v", v)
	}
}
